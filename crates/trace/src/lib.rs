//! Structured tracing and per-phase profiling for the metering workspace.
//!
//! The evaluation harness regenerates every table of the paper, but a
//! single wall-clock number cannot say whether ESPRESSO minimization, FSM
//! encoding, BFSM construction, lock-netlist synthesis or brute-force
//! batches dominate a run. This crate provides the measurement substrate
//! ("measure before optimizing" — the ROADMAP's north star is "as fast as
//! the hardware allows"):
//!
//! * **Hierarchical spans** ([`span`]) with monotonic timings. A span's
//!   *path* is the `/`-joined chain of enclosing span names, so the same
//!   code observed from two experiments aggregates separately.
//! * **Named counters** ([`counter`]) attributed to the current span path.
//!   Counters are *deterministic* quantities (call counts, cube counts,
//!   guesses): their totals must not depend on scheduling.
//! * **Named gauges** ([`gauge_add`] / [`gauge_max`]) for quantities that
//!   legitimately vary run to run (queue-wait nanoseconds, peak worker
//!   threads, cache races). Gauges are excluded from the determinism
//!   contract.
//! * A **thread-safe per-worker aggregator**: each thread accumulates
//!   into thread-local storage and merges into the process-wide store by
//!   span path whenever its span stack empties, so `--jobs 1` and
//!   `--jobs N` produce identical span trees and counter totals — only
//!   the timings differ. Worker threads inherit the spawning thread's
//!   span path via [`thread_scope`], which keeps paths independent of
//!   whether work ran inline or on a worker.
//!
//! Tracing is off by default and every instrumentation point is gated on
//! one relaxed atomic load, so the hot paths pay (almost) nothing until a
//! binary opts in with `--profile` / `--trace-out`.
//!
//! The offline workspace has no `tracing`/`metrics` crates; this is a
//! from-scratch implementation sized to the harness's needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
mod report;
mod summary;

pub use distributed::{
    collect_traces, render_traces, span_id, spans_from_jsonl, spans_to_jsonl, SpanError,
    SpanRecord, TraceContext, TraceQuery, TraceRing, TraceScope, TraceTree,
};
pub use report::{parse_jsonl, TraceFile};
pub use summary::{CounterRow, GaugeAgg, GaugeRow, RunInfo, SpanRow, Summary};

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Version of the JSONL trace schema this crate writes (the `"schema"`
/// field of the `run` line). Bump on any incompatible change.
pub const SCHEMA_VERSION: u64 = 1;

/// Path separator in rendered span paths. Span names must not contain it.
pub const PATH_SEP: char = '/';

// ---------------------------------------------------------------------------
// global state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

type Path = Vec<&'static str>;

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct SpanStat {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
}

#[derive(Debug, Default)]
struct Store {
    spans: HashMap<Path, SpanStat>,
    counters: HashMap<(Path, &'static str), u64>,
    gauge_sums: HashMap<&'static str, u64>,
    gauge_maxes: HashMap<&'static str, u64>,
    gauge_sets: HashMap<&'static str, u64>,
}

impl Store {
    fn merge_from(&mut self, other: &mut Store) {
        for (path, stat) in other.spans.drain() {
            let e = self.spans.entry(path).or_default();
            e.calls += stat.calls;
            e.total_ns += stat.total_ns;
            e.self_ns += stat.self_ns;
        }
        for (key, v) in other.counters.drain() {
            *self.counters.entry(key).or_insert(0) += v;
        }
        for (name, v) in other.gauge_sums.drain() {
            *self.gauge_sums.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauge_maxes.drain() {
            let e = self.gauge_maxes.entry(name).or_insert(0);
            *e = (*e).max(v);
        }
        for (name, v) in other.gauge_sets.drain() {
            self.gauge_sets.insert(name, v);
        }
    }

    fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauge_sums.is_empty()
            && self.gauge_maxes.is_empty()
            && self.gauge_sets.is_empty()
    }
}

fn global() -> &'static Mutex<Store> {
    static GLOBAL: OnceLock<Mutex<Store>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Store::default()))
}

struct Frame {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

#[derive(Default)]
struct Local {
    base: Path,
    stack: Vec<Frame>,
    pending: Store,
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::default());
}

// ---------------------------------------------------------------------------
// control
// ---------------------------------------------------------------------------

/// Whether tracing is currently collecting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off (process-wide). Flip *before* the first span
/// of interest opens; spans created while disabled record nothing even if
/// collection is enabled before they close.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears every recorded span, counter and gauge (the calling thread's
/// pending buffer included). Intended for tests and for resetting between
/// measured sections; call it only while no instrumented spans are open.
pub fn reset() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.pending = Store::default();
        l.stack.clear();
    });
    *global().lock().expect("trace store poisoned") = Store::default();
}

/// Merges the calling thread's pending buffer into the process-wide store.
/// Happens automatically whenever the thread's span stack empties and when
/// a [`thread_scope`] guard drops; call it manually only for long-lived
/// threads that never close their outermost span.
pub fn flush_thread() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if !l.pending.is_empty() {
            let mut pending = std::mem::take(&mut l.pending);
            global().lock().expect("trace store poisoned").merge_from(&mut pending);
        }
    });
}

/// The current span path of this thread (inherited base plus open spans),
/// outermost first. Hand it to worker threads via [`thread_scope`] so work
/// fanned out by a parallel harness lands on the same path it would have
/// on the spawning thread.
pub fn current_path() -> Vec<&'static str> {
    LOCAL.with(|l| {
        let l = l.borrow();
        let mut p = l.base.clone();
        p.extend(l.stack.iter().map(|f| f.name));
        p
    })
}

// ---------------------------------------------------------------------------
// spans
// ---------------------------------------------------------------------------

/// RAII guard of an open span; records on drop. See [`span`].
#[must_use = "a span records when the guard drops — bind it with `let _span = ...`"]
pub struct SpanGuard {
    active: bool,
}

/// Opens a span named `name` (must not contain `/`) nested under the
/// thread's current span path. Timing starts now and ends when the
/// returned guard drops. When tracing is disabled this is a single atomic
/// load and the guard is inert.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    debug_assert!(!name.contains(PATH_SEP), "span name {name:?} contains '/'");
    LOCAL.with(|l| {
        l.borrow_mut().stack.push(Frame {
            name,
            start: Instant::now(),
            child_ns: 0,
        });
    });
    SpanGuard { active: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let Some(frame) = l.stack.pop() else { return };
            let elapsed = frame.start.elapsed().as_nanos() as u64;
            let self_ns = elapsed.saturating_sub(frame.child_ns);
            if let Some(parent) = l.stack.last_mut() {
                parent.child_ns += elapsed;
            }
            let mut path = l.base.clone();
            path.extend(l.stack.iter().map(|f| f.name));
            path.push(frame.name);
            let stat = l.pending.spans.entry(path).or_default();
            stat.calls += 1;
            stat.total_ns += elapsed;
            stat.self_ns += self_ns;
            if l.stack.is_empty() {
                drop(l);
                flush_thread();
            }
        });
    }
}

// ---------------------------------------------------------------------------
// counters and gauges
// ---------------------------------------------------------------------------

/// Adds `delta` to the counter `name` attributed to the current span path.
/// Counters are for *deterministic* quantities: their per-path totals are
/// part of the harness's `--jobs`-invariance contract. Use a gauge for
/// anything timing- or scheduling-dependent.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let mut path = l.base.clone();
        path.extend(l.stack.iter().map(|f| f.name));
        *l.pending.counters.entry((path, name)).or_insert(0) += delta;
        if l.stack.is_empty() {
            drop(l);
            flush_thread();
        }
    });
}

/// Adds `delta` to the sum-aggregated gauge `name` (process-wide, not
/// path-attributed). Gauges carry scheduling-dependent quantities — they
/// are excluded from the determinism contract.
#[inline]
pub fn gauge_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    record_gauge(name, GaugeAgg::Sum, delta);
}

/// Raises the max-aggregated gauge `name` to at least `value`.
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    record_gauge(name, GaugeAgg::Max, value);
}

/// Records a gauge unconditionally (even while collection is disabled) —
/// used by the harness to fold end-of-run totals such as the synthesis
/// cache counters into the trace summary. [`GaugeAgg::Set`] overwrites.
pub fn record_gauge(name: &'static str, agg: GaugeAgg, value: u64) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        match agg {
            GaugeAgg::Sum => *l.pending.gauge_sums.entry(name).or_insert(0) += value,
            GaugeAgg::Max => {
                let e = l.pending.gauge_maxes.entry(name).or_insert(0);
                *e = (*e).max(value);
            }
            GaugeAgg::Set => {
                l.pending.gauge_sets.insert(name, value);
            }
        }
        if l.stack.is_empty() {
            drop(l);
            flush_thread();
        }
    });
}

// ---------------------------------------------------------------------------
// worker-thread scoping
// ---------------------------------------------------------------------------

/// Guard returned by [`thread_scope`]; restores the previous base path and
/// flushes the thread's pending buffer on drop.
pub struct ThreadScope {
    previous: Path,
}

/// Installs `base` as this thread's span path prefix, so spans opened here
/// aggregate exactly as if they had run inline on the thread that captured
/// `base` via [`current_path`]. Parallel harnesses call this at the top of
/// each worker; the guard must outlive every span the worker opens.
pub fn thread_scope(base: &[&'static str]) -> ThreadScope {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        debug_assert!(
            l.stack.is_empty(),
            "thread_scope must be installed before any span opens"
        );
        let previous = std::mem::replace(&mut l.base, base.to_vec());
        ThreadScope { previous }
    })
}

impl Drop for ThreadScope {
    fn drop(&mut self) {
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.base = std::mem::take(&mut self.previous);
        });
        flush_thread();
    }
}

// ---------------------------------------------------------------------------
// summary extraction
// ---------------------------------------------------------------------------

/// Snapshot of everything recorded so far, merged across threads and
/// sorted by span path (deterministically). Open spans are not included —
/// close the root span before summarizing.
pub fn summary() -> Summary {
    flush_thread();
    let store = global().lock().expect("trace store poisoned");
    let mut spans: Vec<SpanRow> = store
        .spans
        .iter()
        .map(|(path, s)| SpanRow {
            path: path.join("/"),
            depth: path.len().saturating_sub(1),
            calls: s.calls,
            total_ns: s.total_ns,
            self_ns: s.self_ns,
        })
        .collect();
    spans.sort_by(|a, b| a.path.cmp(&b.path));
    let mut counters: Vec<CounterRow> = store
        .counters
        .iter()
        .map(|((path, name), v)| CounterRow {
            path: path.join("/"),
            name: name.to_string(),
            value: *v,
        })
        .collect();
    counters.sort_by(|a, b| (&a.path, &a.name).cmp(&(&b.path, &b.name)));
    let mut gauges: Vec<GaugeRow> = store
        .gauge_sums
        .iter()
        .map(|(n, v)| GaugeRow {
            name: n.to_string(),
            agg: GaugeAgg::Sum,
            value: *v,
        })
        .chain(store.gauge_maxes.iter().map(|(n, v)| GaugeRow {
            name: n.to_string(),
            agg: GaugeAgg::Max,
            value: *v,
        }))
        .chain(store.gauge_sets.iter().map(|(n, v)| GaugeRow {
            name: n.to_string(),
            agg: GaugeAgg::Set,
            value: *v,
        }))
        .collect();
    gauges.sort_by(|a, b| (&a.name, a.agg.as_str()).cmp(&(&b.name, b.agg.as_str())));
    Summary {
        spans,
        counters,
        gauges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The trace store is process-wide; tests that mutate it take this
    /// lock so `cargo test`'s parallel runner cannot interleave them.
    fn serial() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = serial();
        set_enabled(false);
        reset();
        {
            let _s = span("noop");
            counter("n", 5);
            gauge_add("g", 1);
        }
        let s = summary();
        assert!(s.spans.is_empty() && s.counters.is_empty() && s.gauges.is_empty());
    }

    #[test]
    fn nested_spans_split_self_and_total() {
        let _g = serial();
        set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        set_enabled(false);
        let s = summary();
        let outer = s.span("outer").expect("outer recorded");
        let inner = s.span("outer/inner").expect("inner recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert_eq!(inner.depth, 1);
        // outer's total covers inner; outer's self excludes it.
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns + 1_000_000);
        assert_eq!(inner.self_ns, inner.total_ns);
    }

    #[test]
    fn counters_attribute_to_the_open_path() {
        let _g = serial();
        set_enabled(true);
        reset();
        {
            let _a = span("a");
            counter("hits", 2);
            {
                let _b = span("b");
                counter("hits", 3);
            }
            counter("hits", 1);
        }
        set_enabled(false);
        let s = summary();
        assert_eq!(s.counter("a", "hits"), Some(3));
        assert_eq!(s.counter("a/b", "hits"), Some(3));
    }

    #[test]
    fn repeated_spans_accumulate_calls() {
        let _g = serial();
        set_enabled(true);
        reset();
        for _ in 0..5 {
            let _s = span("tick");
        }
        set_enabled(false);
        let s = summary();
        assert_eq!(s.span("tick").map(|r| r.calls), Some(5));
    }

    #[test]
    fn worker_threads_merge_by_inherited_path() {
        let _g = serial();
        set_enabled(true);
        reset();
        {
            let _root = span("root");
            let base = current_path();
            assert_eq!(base, vec!["root"]);
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let base = base.clone();
                    scope.spawn(move || {
                        let _scope = thread_scope(&base);
                        let _s = span("work");
                        counter("items", 1);
                    });
                }
            });
        }
        set_enabled(false);
        let s = summary();
        assert_eq!(s.span("root/work").map(|r| r.calls), Some(3));
        assert_eq!(s.counter("root/work", "items"), Some(3));
        // The parent's self time must not be charged for worker time (the
        // workers are not on the parent's stack).
        assert_eq!(s.span("root").map(|r| r.calls), Some(1));
    }

    #[test]
    fn gauges_aggregate_by_kind() {
        let _g = serial();
        set_enabled(true);
        reset();
        gauge_add("wait_ns", 5);
        gauge_add("wait_ns", 7);
        gauge_max("peak", 3);
        gauge_max("peak", 2);
        record_gauge("cache_hits", GaugeAgg::Set, 9);
        record_gauge("cache_hits", GaugeAgg::Set, 11);
        set_enabled(false);
        let s = summary();
        assert_eq!(s.gauge("wait_ns"), Some(12));
        assert_eq!(s.gauge("peak"), Some(3));
        assert_eq!(s.gauge("cache_hits"), Some(11));
    }

    #[test]
    fn structural_digest_ignores_timings() {
        let _g = serial();
        set_enabled(true);
        reset();
        {
            let _a = span("a");
            std::thread::sleep(std::time::Duration::from_millis(1));
            counter("k", 2);
        }
        let first = summary();
        reset();
        {
            let _a = span("a");
            std::thread::sleep(std::time::Duration::from_millis(3));
            counter("k", 2);
        }
        set_enabled(false);
        let second = summary();
        assert_ne!(
            first.span("a").map(|r| r.total_ns),
            second.span("a").map(|r| r.total_ns).map(|n| n + 1),
            "sanity: timings exist"
        );
        assert_eq!(first.structural_digest(), second.structural_digest());
    }
}
