//! The merged trace summary: rows, digests, the JSONL wire format and the
//! human-readable per-phase breakdown.

use hwm_jsonio::Json;
use std::fmt::Write as _;

/// How a gauge merges across records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GaugeAgg {
    /// Values are summed.
    Sum,
    /// The maximum value wins.
    Max,
    /// The last recorded value wins (end-of-run totals).
    Set,
}

impl GaugeAgg {
    /// Wire name of the aggregation (`"sum"` / `"max"` / `"set"`).
    pub fn as_str(self) -> &'static str {
        match self {
            GaugeAgg::Sum => "sum",
            GaugeAgg::Max => "max",
            GaugeAgg::Set => "set",
        }
    }

    /// Parses a wire name back into the aggregation.
    pub fn parse(s: &str) -> Option<GaugeAgg> {
        match s {
            "sum" => Some(GaugeAgg::Sum),
            "max" => Some(GaugeAgg::Max),
            "set" => Some(GaugeAgg::Set),
            _ => None,
        }
    }
}

/// One span path's aggregated statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// `/`-joined path, e.g. `table1/synth.flow/synth.minimize`.
    pub path: String,
    /// Nesting depth (0 for a root span).
    pub depth: usize,
    /// Number of times a span at this path closed.
    pub calls: u64,
    /// Wall nanoseconds including children.
    pub total_ns: u64,
    /// Wall nanoseconds excluding child spans.
    pub self_ns: u64,
}

/// One (path, counter) total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRow {
    /// Span path the counter was recorded under.
    pub path: String,
    /// Counter name.
    pub name: String,
    /// Deterministic total.
    pub value: u64,
}

/// One gauge value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeRow {
    /// Gauge name.
    pub name: String,
    /// Aggregation used.
    pub agg: GaugeAgg,
    /// Aggregated value (scheduling-dependent; excluded from determinism).
    pub value: u64,
}

/// Identity of one benchmark run, folded into both the JSONL trace header
/// and the `bench_meta.json` entry (one schema, two views).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunInfo {
    /// Experiment name (the binary name, e.g. `"table1"`).
    pub experiment: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Worker threads used.
    pub jobs: u64,
    /// Wall-clock nanoseconds of the experiment.
    pub wall_ns: u64,
}

impl RunInfo {
    fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }
}

/// A deterministic, sorted snapshot of everything a run recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Span rows sorted by path.
    pub spans: Vec<SpanRow>,
    /// Counter rows sorted by (path, name).
    pub counters: Vec<CounterRow>,
    /// Gauge rows sorted by name.
    pub gauges: Vec<GaugeRow>,
}

impl Summary {
    /// Looks up a span row by its exact path.
    pub fn span(&self, path: &str) -> Option<&SpanRow> {
        self.spans.iter().find(|r| r.path == path)
    }

    /// Looks up a counter total by (path, name).
    pub fn counter(&self, path: &str, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|r| r.path == path && r.name == name)
            .map(|r| r.value)
    }

    /// Sums a counter over every path it was recorded under.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|r| r.name == name).map(|r| r.value).sum()
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|r| r.name == name).map(|r| r.value)
    }

    /// The scheduling-independent part of the summary as canonical text:
    /// span paths with call counts plus counter totals — no timings, no
    /// gauges. Byte-identical across `--jobs` values for deterministic
    /// workloads; the determinism tests diff exactly this.
    pub fn structural_digest(&self) -> String {
        let mut out = String::new();
        for r in &self.spans {
            let _ = writeln!(out, "span {} calls={}", r.path, r.calls);
        }
        for c in &self.counters {
            let _ = writeln!(out, "counter {} {}={}", c.path, c.name, c.value);
        }
        out
    }

    /// Serializes the run as JSON Lines: one `run` header line, then one
    /// line per span / counter / gauge row, in the summary's deterministic
    /// order. Parse it back with [`crate::parse_jsonl`].
    pub fn to_jsonl(&self, info: &RunInfo) -> String {
        let mut out = String::new();
        let header = Json::obj(vec![
            ("type", Json::Str("run".into())),
            ("schema", Json::U64(crate::SCHEMA_VERSION)),
            ("experiment", Json::Str(info.experiment.clone())),
            ("seed", Json::U64(info.seed)),
            ("jobs", Json::U64(info.jobs)),
            ("wall_ms", Json::F64(info.wall_ms())),
        ]);
        let _ = writeln!(out, "{header}");
        for r in &self.spans {
            let line = Json::obj(vec![
                ("type", Json::Str("span".into())),
                ("path", Json::Str(r.path.clone())),
                ("calls", Json::U64(r.calls)),
                ("total_ms", Json::F64(r.total_ns as f64 / 1e6)),
                ("self_ms", Json::F64(r.self_ns as f64 / 1e6)),
            ]);
            let _ = writeln!(out, "{line}");
        }
        for c in &self.counters {
            let line = Json::obj(vec![
                ("type", Json::Str("counter".into())),
                ("path", Json::Str(c.path.clone())),
                ("name", Json::Str(c.name.clone())),
                ("value", Json::U64(c.value)),
            ]);
            let _ = writeln!(out, "{line}");
        }
        for g in &self.gauges {
            let line = Json::obj(vec![
                ("type", Json::Str("gauge".into())),
                ("name", Json::Str(g.name.clone())),
                ("agg", Json::Str(g.agg.as_str().into())),
                ("value", Json::U64(g.value)),
            ]);
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// The run's `bench_meta.json` entry: the same schema fields as the
    /// JSONL `run` header (seed, jobs, wall_ms) followed by every gauge as
    /// a flat field — `bench_meta.json` is thereby a *view* over the trace
    /// summary, not a parallel bookkeeping path. Counters and spans stay in
    /// the JSONL trace (they are per-path and would not flatten losslessly).
    pub fn meta_json(&self, info: &RunInfo) -> Json {
        let mut fields = vec![
            ("seed".to_string(), Json::U64(info.seed)),
            ("jobs".to_string(), Json::U64(info.jobs)),
            ("wall_ms".to_string(), Json::F64(info.wall_ms())),
        ];
        for g in &self.gauges {
            fields.push((g.name.clone(), Json::U64(g.value)));
        }
        if !self.spans.is_empty() {
            fields.push(("trace_spans".to_string(), Json::U64(self.spans.len() as u64)));
        }
        Json::Obj(fields)
    }

    /// Renders the human-readable per-phase breakdown: one row per span
    /// path (indented by depth), with call counts, total/self time, the
    /// share of `wall_ns` each phase's total covers, and per-phase cache
    /// hit rates where both cache counters were recorded. Gauges print
    /// underneath.
    pub fn phase_table(&self, info: &RunInfo) -> String {
        let wall_ns = info.wall_ns.max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "per-phase breakdown — {} (seed {}, jobs {}, wall {:.1} ms)",
            info.experiment,
            info.seed,
            info.jobs,
            info.wall_ms()
        );
        let header = ["phase", "calls", "total ms", "self ms", "% wall", "cache"];
        let mut rows: Vec<Vec<String>> = Vec::new();
        for r in &self.spans {
            let name = match r.path.rfind(crate::PATH_SEP) {
                Some(i) => &r.path[i + 1..],
                None => r.path.as_str(),
            };
            let hit_rate = match (
                self.counter(&r.path, "cache_hits"),
                self.counter(&r.path, "cache_misses"),
            ) {
                (Some(h), Some(m)) if h + m > 0 => {
                    format!("{:.0}% hit", 100.0 * h as f64 / (h + m) as f64)
                }
                (Some(h), None) if h > 0 => format!("{h} hit"),
                (None, Some(m)) if m > 0 => format!("{m} miss"),
                _ => String::new(),
            };
            rows.push(vec![
                format!("{}{}", "  ".repeat(r.depth), name),
                r.calls.to_string(),
                format!("{:.2}", r.total_ns as f64 / 1e6),
                format!("{:.2}", r.self_ns as f64 / 1e6),
                format!("{:.1}", 100.0 * r.total_ns as f64 / wall_ns as f64),
                hit_rate,
            ]);
        }
        out.push_str(&render_aligned(&header, &rows));
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for g in &self.gauges {
                let _ = writeln!(out, "  {} ({}) = {}", g.name, g.agg.as_str(), g.value);
            }
        }
        let accounted: u64 = self.spans.iter().filter(|r| r.depth == 0).map(|r| r.total_ns).sum();
        let _ = writeln!(
            out,
            "root spans account for {:.1}% of wall time",
            100.0 * accounted as f64 / wall_ns as f64
        );
        out
    }

    /// Merges another summary into this one (used by the `profile` binary
    /// to combine traces from several runs): spans and counters add, gauges
    /// combine by their aggregation kind.
    pub fn merge(&mut self, other: &Summary) {
        for r in &other.spans {
            match self.spans.iter_mut().find(|s| s.path == r.path) {
                Some(s) => {
                    s.calls += r.calls;
                    s.total_ns += r.total_ns;
                    s.self_ns += r.self_ns;
                }
                None => self.spans.push(r.clone()),
            }
        }
        self.spans.sort_by(|a, b| a.path.cmp(&b.path));
        for c in &other.counters {
            match self
                .counters
                .iter_mut()
                .find(|x| x.path == c.path && x.name == c.name)
            {
                Some(x) => x.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        self.counters.sort_by(|a, b| (&a.path, &a.name).cmp(&(&b.path, &b.name)));
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|x| x.name == g.name && x.agg == g.agg) {
                Some(x) => match g.agg {
                    GaugeAgg::Sum => x.value += g.value,
                    GaugeAgg::Max => x.value = x.value.max(g.value),
                    GaugeAgg::Set => x.value = g.value,
                },
                None => self.gauges.push(g.clone()),
            }
        }
        self.gauges.sort_by(|a, b| (&a.name, a.agg.as_str()).cmp(&(&b.name, b.agg.as_str())));
    }
}

/// Right-aligned text table (the trace crate cannot depend on the bench
/// crate's renderer — the dependency points the other way).
fn render_aligned(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        // The phase column is left-aligned so the indentation tree reads.
        if i == 0 {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        } else {
            let _ = write!(line, "{:>w$}  ", h, w = widths[i]);
        }
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i == 0 {
                let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
            } else {
                let _ = write!(line, "{:>w$}  ", cell, w = widths[i]);
            }
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Summary, RunInfo) {
        let summary = Summary {
            spans: vec![
                SpanRow {
                    path: "t".into(),
                    depth: 0,
                    calls: 1,
                    total_ns: 10_000_000,
                    self_ns: 4_000_000,
                },
                SpanRow {
                    path: "t/synth".into(),
                    depth: 1,
                    calls: 3,
                    total_ns: 6_000_000,
                    self_ns: 6_000_000,
                },
            ],
            counters: vec![CounterRow {
                path: "t".into(),
                name: "cache_hits".into(),
                value: 2,
            }],
            gauges: vec![GaugeRow {
                name: "peak".into(),
                agg: GaugeAgg::Max,
                value: 4,
            }],
        };
        let info = RunInfo {
            experiment: "t".into(),
            seed: 7,
            jobs: 2,
            wall_ns: 10_000_000,
        };
        (summary, info)
    }

    #[test]
    fn phase_table_accounts_wall_time() {
        let (s, info) = sample();
        let t = s.phase_table(&info);
        assert!(t.contains("  synth"), "child rows are indented leaf names: {t}");
        assert!(t.contains("100.0"), "root must cover the wall: {t}");
        assert!(t.contains("root spans account for 100.0%"), "{t}");
    }

    #[test]
    fn meta_json_is_a_view_over_gauges() {
        let (s, info) = sample();
        let j = s.meta_json(&info);
        assert_eq!(j.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("jobs").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("peak").and_then(Json::as_u64), Some(4));
        assert!(j.get("wall_ms").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn merge_adds_spans_and_counters() {
        let (mut a, _) = sample();
        let (b, _) = sample();
        a.merge(&b);
        assert_eq!(a.span("t").unwrap().calls, 2);
        assert_eq!(a.span("t/synth").unwrap().total_ns, 12_000_000);
        assert_eq!(a.counter("t", "cache_hits"), Some(4));
        assert_eq!(a.gauge("peak"), Some(4), "max gauge does not add");
    }
}
