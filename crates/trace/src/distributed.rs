//! Deterministic distributed tracing for the activation service.
//!
//! The in-process profiler in this crate answers "where did the time
//! go" for one binary. A sharded activation cluster needs the causal
//! counterpart: *which* router dispatch, shard handler, journal append
//! and replication ship served one `unlock` — across processes and over
//! real TCP. This module is that layer, built on the workspace's
//! determinism contract instead of wall clocks:
//!
//! * A [`TraceContext`] identifies one request's trace. The trace id is
//!   FNV-1a over `{seed, logical tick, client, request kind}` — no wall
//!   clock, no RNG — so the same workload produces byte-identical trace
//!   ids for any `--jobs` value and either transport.
//! * Span ids are parent-indexed: [`span_id`] hashes
//!   `{trace_id, parent, name, child index}`, and [`TraceScope`] hands
//!   out child indices deterministically, so a span tree's shape fully
//!   determines its ids.
//! * [`SpanRecord`]s are plain data with a strict JSON codec (unknown
//!   fields rejected, same contract as the wire protocol) and a JSONL
//!   dump format, collected per node into a fixed-capacity
//!   [`TraceRing`].
//! * [`TraceQuery`] / [`render_traces`] group a span dump into trees,
//!   filter by root attributes (IC, client, outcome), rank by logical
//!   tick-duration and render ASCII trees — the engine behind the
//!   `hwm_traces` binary.
//!
//! Durations here are *logical*: a trace's "latency" is the tick spread
//! its spans cover. That is scheduling-independent by construction —  a
//! failover re-dispatch spans two ticks, a plain request one — which is
//! exactly the property that lets trace dumps be golden-snapshot
//! material.

use hwm_jsonio::Json;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

/// Schema version of the span JSONL dump. Bump on incompatible change.
pub const SPAN_SCHEMA_VERSION: u64 = 1;

/// Default per-node span ring capacity (spans, not traces).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv_u64(hash: u64, value: u64) -> u64 {
    fnv_bytes(hash, &value.to_le_bytes())
}

/// A broken span dump or trace-context payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanError {
    /// Human-readable description.
    pub message: String,
}

impl SpanError {
    fn new(message: impl Into<String>) -> SpanError {
        SpanError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span error: {}", self.message)
    }
}

impl std::error::Error for SpanError {}

/// The trace identity a request carries across node boundaries.
///
/// `parent_span == 0` means "this context roots the trace": the first
/// node to act records the `request` root span. A non-zero parent means
/// the work is a child of a span on the sending node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace id every span of the request shares.
    pub trace_id: u64,
    /// Span id of the enclosing span on the sending node (0 = root).
    pub parent_span: u64,
    /// Logical tick the trace was rooted at.
    pub tick: u64,
}

impl TraceContext {
    /// Roots a trace deterministically: FNV-1a over
    /// `{seed, tick, client, kind}`. No wall clock, no RNG.
    pub fn root(seed: u64, tick: u64, client: &str, kind: &str) -> TraceContext {
        let mut h = FNV_BASIS;
        h = fnv_u64(h, seed);
        h = fnv_u64(h, tick);
        h = fnv_bytes(h, client.as_bytes());
        h = fnv_bytes(h, kind.as_bytes());
        // Trace id 0 is reserved as "absent" in exemplars; remap.
        TraceContext {
            trace_id: if h == 0 { FNV_BASIS } else { h },
            parent_span: 0,
            tick,
        }
    }

    /// The same trace continued under `parent_span`.
    pub fn child(&self, parent_span: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span,
            tick: self.tick,
        }
    }

    /// Serializes to a JSON object (the wire "trace" field).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("trace_id", Json::U64(self.trace_id)),
            ("parent_span", Json::U64(self.parent_span)),
            ("tick", Json::U64(self.tick)),
        ])
    }

    /// Strict parse: unknown fields, missing fields and wrong types are
    /// refused.
    ///
    /// # Errors
    ///
    /// Returns a [`SpanError`] naming the offending field.
    pub fn from_json(j: &Json) -> Result<TraceContext, SpanError> {
        let fields = StrictObj::new(j, "trace context")?;
        let ctx = TraceContext {
            trace_id: fields.u64_field("trace_id")?,
            parent_span: fields.u64_field("parent_span")?,
            tick: fields.u64_field("tick")?,
        };
        fields.finish()?;
        Ok(ctx)
    }
}

/// Derives a span id from its position in the tree: FNV-1a over
/// `{trace_id, parent span id, span name, child index under parent}`.
/// The tree's shape fully determines every id — no global counters.
pub fn span_id(trace_id: u64, parent: u64, name: &str, index: u64) -> u64 {
    let mut h = FNV_BASIS;
    h = fnv_u64(h, trace_id);
    h = fnv_u64(h, parent);
    h = fnv_bytes(h, name.as_bytes());
    h = fnv_u64(h, index);
    if h == 0 {
        FNV_BASIS
    } else {
        h
    }
}

/// Deterministic child-index allocator for one trace: the n-th span
/// opened under a given parent gets index n, so re-running the same
/// request produces the same span ids.
#[derive(Debug, Default)]
pub struct TraceScope {
    next_index: HashMap<u64, u64>,
}

impl TraceScope {
    /// A fresh scope (per request).
    pub fn new() -> TraceScope {
        TraceScope::default()
    }

    /// Allocates the next span id under `parent`.
    pub fn span(&mut self, trace_id: u64, parent: u64, name: &str) -> u64 {
        let idx = self.next_index.entry(parent).or_insert(0);
        let id = span_id(trace_id, parent, name, *idx);
        *idx += 1;
        id
    }
}

/// One completed span, as it lands in a node's ring and in JSONL dumps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id ([`span_id`]-derived).
    pub span_id: u64,
    /// Parent span id (0 = root span of the trace).
    pub parent: u64,
    /// Span name (`request`, `dispatch`, `handle/unlock`, ...).
    pub name: String,
    /// The node that recorded the span (`router`, `shard1/leader`, ...).
    pub node: String,
    /// Logical tick the span covers.
    pub tick: u64,
    /// Deterministic work units (journal entries shipped, spans
    /// produced, ...); 0 when the span is purely structural.
    pub units: u64,
    /// Attributes, insertion-ordered (`client`, `kind`, `ic`,
    /// `outcome`, `shard`, `follower`, ...).
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Serializes to a JSON object (one JSONL dump line).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("trace_id", Json::U64(self.trace_id)),
            ("span_id", Json::U64(self.span_id)),
            ("parent", Json::U64(self.parent)),
            ("name", Json::Str(self.name.clone())),
            ("node", Json::Str(self.node.clone())),
            ("tick", Json::U64(self.tick)),
            ("units", Json::U64(self.units)),
            (
                "attrs",
                Json::Obj(
                    self.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    /// Strict parse of one span object.
    ///
    /// # Errors
    ///
    /// Returns a [`SpanError`] naming the offending field.
    pub fn from_json(j: &Json) -> Result<SpanRecord, SpanError> {
        let fields = StrictObj::new(j, "span record")?;
        let attrs = match fields.json_field("attrs")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| SpanError::new(format!("attr {k:?} must be a string")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(SpanError::new("field \"attrs\" must be an object")),
        };
        let span = SpanRecord {
            trace_id: fields.u64_field("trace_id")?,
            span_id: fields.u64_field("span_id")?,
            parent: fields.u64_field("parent")?,
            name: fields.str_field("name")?,
            node: fields.str_field("node")?,
            tick: fields.u64_field("tick")?,
            units: fields.u64_field("units")?,
            attrs,
        };
        fields.finish()?;
        Ok(span)
    }

    /// The value of attribute `key`, if the span carries it.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Renders spans as a JSONL dump (one strict JSON object per line).
pub fn spans_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&s.to_json().to_string());
        out.push('\n');
    }
    out
}

/// Parses a JSONL span dump, rejecting any malformed line.
///
/// # Errors
///
/// Returns a [`SpanError`] naming the offending line.
pub fn spans_from_jsonl(text: &str) -> Result<Vec<SpanRecord>, SpanError> {
    let mut spans = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(line)
            .map_err(|e| SpanError::new(format!("span dump line {}: {e}", i + 1)))?;
        spans.push(
            SpanRecord::from_json(&j)
                .map_err(|e| SpanError::new(format!("span dump line {}: {}", i + 1, e.message)))?,
        );
    }
    Ok(spans)
}

/// A fixed-capacity span buffer: the per-node trace store the
/// unthrottled `traces` admin request serves. Oldest spans are evicted
/// first; eviction only depends on the accepted span sequence, so the
/// ring's contents stay deterministic.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    spans: VecDeque<SpanRecord>,
}

impl TraceRing {
    /// A ring holding at most `cap` spans (at least 1).
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            cap: cap.max(1),
            spans: VecDeque::new(),
        }
    }

    /// Appends a span, evicting the oldest if full.
    pub fn push(&mut self, span: SpanRecord) {
        if self.spans.len() == self.cap {
            self.spans.pop_front();
        }
        self.spans.push_back(span);
    }

    /// The buffered spans, oldest first. With `limit`, only the newest
    /// `limit` spans.
    pub fn records(&self, limit: Option<usize>) -> Vec<SpanRecord> {
        let skip = match limit {
            Some(n) => self.spans.len().saturating_sub(n),
            None => 0,
        };
        self.spans.iter().skip(skip).cloned().collect()
    }

    /// Buffered span count.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

impl Default for TraceRing {
    fn default() -> TraceRing {
        TraceRing::new(DEFAULT_SPAN_CAPACITY)
    }
}

/// One trace reassembled from a span dump: every span sharing a
/// trace id, in dump order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The shared trace id.
    pub trace_id: u64,
    /// The trace's spans, in the order the dump recorded them.
    pub spans: Vec<SpanRecord>,
}

impl TraceTree {
    /// The root span (`parent == 0`), if the dump captured it.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent == 0)
    }

    /// Logical duration: the tick spread the trace's spans cover. A
    /// plain request is 0 wide; a failover re-dispatch covers the
    /// checkpoint tick too.
    pub fn tick_duration(&self) -> u64 {
        let min = self.spans.iter().map(|s| s.tick).min().unwrap_or(0);
        let max = self.spans.iter().map(|s| s.tick).max().unwrap_or(0);
        max - min
    }

    /// Total units across the trace's spans.
    pub fn total_units(&self) -> u64 {
        self.spans.iter().map(|s| s.units).sum()
    }
}

/// Groups a span dump into traces, in first-seen order.
pub fn collect_traces(spans: &[SpanRecord]) -> Vec<TraceTree> {
    let mut order: Vec<u64> = Vec::new();
    let mut by_id: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
    for s in spans {
        if !by_id.contains_key(&s.trace_id) {
            order.push(s.trace_id);
        }
        by_id.entry(s.trace_id).or_default().push(s.clone());
    }
    order
        .into_iter()
        .map(|trace_id| TraceTree {
            trace_id,
            spans: by_id.remove(&trace_id).expect("trace id collected"),
        })
        .collect()
}

/// A filter + ranking over a span dump — what `hwm_traces` runs.
#[derive(Debug, Default, Clone)]
pub struct TraceQuery {
    /// Keep only traces whose root has this `client` attribute.
    pub client: Option<String>,
    /// Keep only traces whose root has this `ic` attribute.
    pub ic: Option<String>,
    /// Keep only traces whose root has this `outcome` attribute.
    pub outcome: Option<String>,
    /// Keep the N slowest traces by logical tick-duration (ties broken
    /// by total units, then dump order — all deterministic).
    pub slowest: Option<usize>,
}

impl TraceQuery {
    fn keeps(&self, tree: &TraceTree) -> bool {
        let want = |filter: &Option<String>, key: &str| match filter {
            Some(v) => tree.root().and_then(|r| r.attr(key)) == Some(v.as_str()),
            None => true,
        };
        want(&self.client, "client") && want(&self.ic, "ic") && want(&self.outcome, "outcome")
    }

    /// Runs the query over a span dump.
    pub fn run(&self, spans: &[SpanRecord]) -> Vec<TraceTree> {
        let mut trees: Vec<TraceTree> = collect_traces(spans)
            .into_iter()
            .filter(|t| self.keeps(t))
            .collect();
        if let Some(n) = self.slowest {
            // Stable sort: equal keys keep dump order.
            trees.sort_by(|a, b| {
                (b.tick_duration(), b.total_units()).cmp(&(a.tick_duration(), a.total_units()))
            });
            trees.truncate(n);
        }
        trees
    }
}

fn render_span_line(out: &mut String, s: &SpanRecord, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&format!("{} @{} tick={}", s.name, s.node, s.tick));
    if s.units > 0 {
        out.push_str(&format!(" units={}", s.units));
    }
    for (k, v) in &s.attrs {
        out.push_str(&format!(" {k}={v}"));
    }
    out.push('\n');
}

fn render_subtree(
    out: &mut String,
    children: &HashMap<u64, Vec<&SpanRecord>>,
    span: &SpanRecord,
    depth: usize,
) {
    render_span_line(out, span, depth);
    if let Some(kids) = children.get(&span.span_id) {
        for kid in kids {
            render_subtree(out, children, kid, depth + 1);
        }
    }
}

/// Renders traces as indented ASCII span trees — deterministic,
/// golden-snapshot material.
pub fn render_traces(trees: &[TraceTree]) -> String {
    let mut out = String::new();
    for tree in trees {
        let min = tree.spans.iter().map(|s| s.tick).min().unwrap_or(0);
        let max = tree.spans.iter().map(|s| s.tick).max().unwrap_or(0);
        out.push_str(&format!(
            "trace {:016x} spans={} ticks={}..{}\n",
            tree.trace_id,
            tree.spans.len(),
            min,
            max
        ));
        let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        let ids: std::collections::HashSet<u64> =
            tree.spans.iter().map(|s| s.span_id).collect();
        let mut tops: Vec<&SpanRecord> = Vec::new();
        for s in &tree.spans {
            if s.parent != 0 && ids.contains(&s.parent) && s.parent != s.span_id {
                children.entry(s.parent).or_default().push(s);
            } else {
                // Roots, and orphans whose parent the dump missed.
                tops.push(s);
            }
        }
        for top in tops {
            render_subtree(&mut out, &children, top, 1);
        }
    }
    out
}

/// Strict object reader (every field consumed exactly once) — the wire
/// codec's idiom, copied because the service keeps its reader private.
struct StrictObj<'a> {
    what: &'static str,
    fields: &'a [(String, Json)],
    used: std::cell::RefCell<Vec<bool>>,
}

impl<'a> StrictObj<'a> {
    fn new(j: &'a Json, what: &'static str) -> Result<StrictObj<'a>, SpanError> {
        match j {
            Json::Obj(fields) => Ok(StrictObj {
                what,
                fields,
                used: std::cell::RefCell::new(vec![false; fields.len()]),
            }),
            _ => Err(SpanError::new(format!("{what} must be a JSON object"))),
        }
    }

    fn take(&self, name: &str) -> Option<&'a Json> {
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if k == name && !self.used.borrow()[i] {
                self.used.borrow_mut()[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn json_field(&self, name: &'static str) -> Result<&'a Json, SpanError> {
        self.take(name)
            .ok_or_else(|| SpanError::new(format!("{} missing field {name:?}", self.what)))
    }

    fn str_field(&self, name: &'static str) -> Result<String, SpanError> {
        self.json_field(name)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| SpanError::new(format!("field {name:?} must be a string")))
    }

    fn u64_field(&self, name: &'static str) -> Result<u64, SpanError> {
        self.json_field(name)?
            .as_u64()
            .ok_or_else(|| SpanError::new(format!("field {name:?} must be an unsigned integer")))
    }

    fn finish(&self) -> Result<(), SpanError> {
        for (i, (k, _)) in self.fields.iter().enumerate() {
            if !self.used.borrow()[i] {
                return Err(SpanError::new(format!(
                    "{} has unknown field {k:?}",
                    self.what
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, parent: u64, name: &str, tick: u64, units: u64) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id: span_id(trace_id, parent, name, 0),
            parent,
            name: name.into(),
            node: "test".into(),
            tick,
            units,
            attrs: vec![("client".into(), "alice".into())],
        }
    }

    #[test]
    fn trace_ids_are_deterministic_and_input_sensitive() {
        let a = TraceContext::root(2024, 7, "alice", "unlock");
        let b = TraceContext::root(2024, 7, "alice", "unlock");
        assert_eq!(a, b);
        assert_ne!(a.trace_id, TraceContext::root(2024, 8, "alice", "unlock").trace_id);
        assert_ne!(a.trace_id, TraceContext::root(2024, 7, "bob", "unlock").trace_id);
        assert_ne!(a.trace_id, TraceContext::root(2025, 7, "alice", "unlock").trace_id);
        assert_ne!(a.trace_id, TraceContext::root(2024, 7, "alice", "register").trace_id);
        assert_eq!(a.parent_span, 0);
    }

    #[test]
    fn span_ids_depend_on_position() {
        let t = 42;
        assert_eq!(span_id(t, 0, "request", 0), span_id(t, 0, "request", 0));
        assert_ne!(span_id(t, 0, "request", 0), span_id(t, 0, "request", 1));
        assert_ne!(span_id(t, 0, "request", 0), span_id(t, 1, "request", 0));
        assert_ne!(span_id(t, 0, "request", 0), span_id(t, 0, "dispatch", 0));
    }

    #[test]
    fn scope_hands_out_sibling_indices() {
        let mut scope = TraceScope::new();
        let a = scope.span(9, 0, "x");
        let b = scope.span(9, 0, "x");
        let c = scope.span(9, a, "x");
        assert_ne!(a, b, "siblings get distinct ids");
        assert_ne!(a, c, "children under different parents differ");
        assert_eq!(a, span_id(9, 0, "x", 0));
        assert_eq!(b, span_id(9, 0, "x", 1));
    }

    #[test]
    fn context_and_span_round_trip_strictly() {
        let ctx = TraceContext::root(1, 2, "c", "register");
        assert_eq!(TraceContext::from_json(&ctx.to_json()), Ok(ctx));
        let s = span(5, 0, "request", 3, 2);
        assert_eq!(SpanRecord::from_json(&s.to_json()), Ok(s.clone()));

        // Tamper: unknown field refused.
        let mut j = match ctx.to_json() {
            Json::Obj(f) => f,
            _ => unreachable!(),
        };
        j.push(("extra".into(), Json::U64(1)));
        let err = TraceContext::from_json(&Json::Obj(j)).unwrap_err();
        assert!(err.message.contains("unknown field"), "{}", err.message);

        // Tamper: wrong type refused.
        let bad = Json::obj(vec![
            ("trace_id", Json::Str("nope".into())),
            ("parent_span", Json::U64(0)),
            ("tick", Json::U64(0)),
        ]);
        assert!(TraceContext::from_json(&bad).is_err());
    }

    #[test]
    fn jsonl_round_trips_and_rejects_garbage() {
        let spans = vec![span(5, 0, "request", 3, 0), span(5, 7, "dispatch", 3, 1)];
        let dump = spans_to_jsonl(&spans);
        assert_eq!(spans_from_jsonl(&dump).unwrap(), spans);
        assert!(spans_from_jsonl("not json\n").is_err());
        let err = spans_from_jsonl("{\"trace_id\":1}\n").unwrap_err();
        assert!(err.message.contains("line 1"), "{}", err.message);
    }

    #[test]
    fn ring_evicts_oldest_and_limits() {
        let mut ring = TraceRing::new(3);
        for tick in 0..5 {
            ring.push(span(1, 0, "request", tick, 0));
        }
        let all = ring.records(None);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].tick, 2, "oldest spans evicted first");
        assert_eq!(ring.records(Some(1))[0].tick, 4, "limit keeps the newest");
    }

    #[test]
    fn query_filters_and_ranks_by_tick_duration() {
        // Trace 1: one tick wide. Trace 2: two ticks (a failover shape).
        let mut spans = vec![span(1, 0, "request", 10, 0)];
        let root2 = SpanRecord {
            attrs: Vec::new(),
            ..span(2, 0, "request", 12, 0)
        };
        let kid2 = SpanRecord {
            trace_id: 2,
            span_id: span_id(2, root2.span_id, "failover", 0),
            parent: root2.span_id,
            name: "failover".into(),
            node: "router".into(),
            tick: 11,
            units: 0,
            attrs: Vec::new(),
        };
        spans.push(root2.clone());
        spans.push(kid2);
        let slowest = TraceQuery {
            slowest: Some(1),
            ..TraceQuery::default()
        }
        .run(&spans);
        assert_eq!(slowest.len(), 1);
        assert_eq!(slowest[0].trace_id, 2, "the two-tick trace ranks first");
        assert_eq!(slowest[0].tick_duration(), 1);

        let by_client = TraceQuery {
            client: Some("alice".into()),
            ..TraceQuery::default()
        }
        .run(&spans);
        assert_eq!(by_client.len(), 1, "trace 2's root has no client attr");
        assert_eq!(by_client[0].trace_id, 1);
    }

    #[test]
    fn rendering_indents_children_under_parents() {
        let root = span(7, 0, "request", 4, 0);
        let kid = SpanRecord {
            trace_id: 7,
            span_id: span_id(7, root.span_id, "dispatch", 0),
            parent: root.span_id,
            name: "dispatch".into(),
            node: "router".into(),
            tick: 4,
            units: 2,
            attrs: vec![("shard".into(), "1".into())],
        };
        let text = render_traces(&collect_traces(&[root, kid]));
        assert_eq!(
            text,
            "trace 0000000000000007 spans=2 ticks=4..4\n  \
             request @test tick=4 client=alice\n    \
             dispatch @router tick=4 units=2 shard=1\n"
        );
    }
}
