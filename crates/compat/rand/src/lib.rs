//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the narrow slice of the `rand` API it actually
//! uses. The generator behind [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64 — *not* the ChaCha12 generator of upstream `rand`, but every
//! draw is a pure integer/IEEE-754 computation, so streams are bit-identical
//! across platforms, thread counts and runs. That reproducibility guarantee
//! is load-bearing: the evaluation harness derives one RNG per work item
//! from a master seed and asserts byte-identical tables regardless of
//! `--jobs`.
//!
//! Supported surface: `SeedableRng::{seed_from_u64, from_seed}`,
//! `Rng::{random, random_bool, random_range, next_u64, fill_bytes}`,
//! `rand::rngs::StdRng`, and `rand::seq::SliceRandom::{shuffle, choose}`.
//! `RngExt` is an alias re-export of [`Rng`] kept for call sites that
//! import either name.

#![forbid(unsafe_code)]

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanded with SplitMix64
    /// exactly like upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard seed-expansion permutation.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform random generation of a value of `Self`.
pub trait StandardUniform: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics when the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if width == 0 {
                    // Full-domain u128 range: a raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Random number generator: one core method plus the convenience surface
/// the workspace uses. All defaults derive deterministically from
/// [`Rng::next_u64`].
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of `T`.
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Uniform draw from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Historical alias: some call sites import the convenience methods under
/// this name. It is the same trait.
pub use Rng as RngExt;

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Small, fast, and portable; streams depend only on the seed, never on
    /// platform or scheduling.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0, 0, 0, 0] {
                // xoshiro must not start at the all-zero state.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> StdRng {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic in the RNG stream.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "{heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
