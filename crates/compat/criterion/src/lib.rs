//! Offline mini benchmark harness.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros so the workspace's
//! benches compile and run without crates.io access. Measurement is a
//! simple calibrated loop (warm-up, then enough iterations to pass a
//! target measurement time) reporting mean ns/iter — adequate for relative
//! regression tracking, without criterion's statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            target: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Accepts criterion's `sample_size` configuration. The calibrated
    /// loop ignores the sample count (it times one batch), so this only
    /// keeps `criterion_group!` configs compiling unchanged.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    /// Shortens the target measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, target: Duration) -> Criterion {
        self.target = target;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass: one timed iteration batch.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / iters as f64;
        println!("bench {id:<40} {ns:>14.1} ns/iter ({iters} iters)");
        self
    }
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }
}
