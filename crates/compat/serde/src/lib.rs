//! Offline serde stub.
//!
//! `Serialize`/`Deserialize` are blanket-implemented marker traits, and the
//! derives (re-exported from the companion `serde_derive` crate) expand to
//! nothing. Workspace types keep their derives as machine-checked intent;
//! actual wire formats are implemented explicitly in `hwm-jsonio`, which
//! guarantees lossless `u64` round-trips — something generic JSON floats
//! would not.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type is intended to be serializable.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker: the type is intended to be deserializable.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
