//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The workspace's data types carry serde derives as documentation of
//! intent, but actual serialization goes through the hand-rolled
//! `hwm-jsonio` codecs (the build environment cannot fetch real serde).
//! These derives therefore expand to nothing; the `serde` stub crate
//! provides blanket-implemented marker traits of the same names.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
