//! Test-runner configuration and case outcomes.

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated; carries the failure message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be retried.
    Reject(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}
