//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// produces the final value directly from the deterministic RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and uses it to pick a second
    /// strategy (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.random::<f64>()
    }
}

/// The `any::<T>()` strategy type.
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($S:ident $idx:tt),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Object-safe strategy wrapper used by [`Union`] (`prop_oneof!`).
pub trait DynStrategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value through a vtable.
    fn generate_dyn(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// Boxes a strategy for storage in a heterogeneous [`Union`].
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<V: Debug> {
    options: Vec<Box<dyn DynStrategy<Value = V>>>,
}

impl<V: Debug> Union<V> {
    /// Builds the union; panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn DynStrategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate_dyn(rng)
    }
}

/// A collection-size specification: a fixed size or a range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    /// Draws a size.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        if self.lo >= self.hi_inclusive {
            self.lo
        } else {
            rng.random_range(self.lo..=self.hi_inclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}
