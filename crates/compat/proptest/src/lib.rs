//! Offline mini property-testing framework.
//!
//! Implements the slice of the proptest API this workspace's test suites
//! use: the [`proptest!`] macro (with optional `#![proptest_config(...)]`
//! header), [`Strategy`] with `prop_map`, [`prelude::any`], `Just`,
//! `prop_oneof!`, `prop::collection::{vec, hash_set}`,
//! `prop::sample::select`, integer-range strategies, and the
//! `prop_assert*` family.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (every strategy
//!   value is `Debug`) and the deterministic case index; re-running the
//!   test replays the identical sequence, which is usually enough to debug.
//! * **Deterministic generation.** Each test function derives its RNG from
//!   a hash of its own name, so failures are stable across runs and
//!   machines — the same reproducibility contract the evaluation harness
//!   makes for its tables.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;


pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

/// Strategy modules under the conventional `prop::` path.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy};
        use std::collections::HashSet;
        use std::hash::Hash;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `HashSet<S::Value>` aiming for a size in `size`
        /// (duplicates shrink the set, as in real proptest).
        pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`hash_set`].
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;

            fn generate(&self, rng: &mut rand::rngs::StdRng) -> HashSet<S::Value> {
                let n = self.size.sample(rng);
                let mut out = HashSet::with_capacity(n);
                // Bounded retry keeps generation total even when the value
                // domain is smaller than the requested size.
                for _ in 0..4 * n.max(1) {
                    if out.len() >= n {
                        break;
                    }
                    out.insert(self.element.generate(rng));
                }
                out
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use rand::Rng;

        /// Strategy drawing one element of `values` uniformly.
        pub fn select<T: Clone + std::fmt::Debug>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select requires a non-empty vec");
            Select { values }
        }

        /// See [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            values: Vec<T>,
        }

        impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut rand::rngs::StdRng) -> T {
                self.values[rng.random_range(0..self.values.len())].clone()
            }
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Stable 64-bit FNV-1a hash of a test name, used as the per-test seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `cases` iterations of a property, reporting the first failure.
/// Called by the [`proptest!`] expansion; not part of the public API shape
/// of real proptest.
pub fn run_property<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng, u32) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(fnv1a(test_name));
    let mut rejected = 0u32;
    let mut executed = 0u32;
    let mut index = 0u32;
    while executed < config.cases {
        match case(&mut rng, index) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.cases * 16 + 1024,
                    "{test_name}: too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed at deterministic case {index}: {msg}");
            }
        }
        index += 1;
    }
}

/// The proptest entry macro; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]: one `#[test]` fn per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config = $cfg;
            $crate::run_property(stringify!($name), &config, |__rng, __case| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                // Render inputs before the body can move them; the body may
                // consume its arguments by value.
                let __inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}; ", &$arg));
                    )+
                    s
                };
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome.map_err(|e| match e {
                    $crate::TestCaseError::Fail(msg) => $crate::TestCaseError::Fail(
                        format!("{msg}\n    inputs: {__inputs}"),
                    ),
                    reject => reject,
                })
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case when the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(any::<bool>(), 3..=7)) {
            prop_assert!((3..=7).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn oneof_and_select_cover(x in prop_oneof![Just(1u8), Just(2), Just(3)],
                                  y in prop::sample::select(vec![10usize, 20])) {
            prop_assert!((1..=3).contains(&x));
            prop_assert!(y == 10 || y == 20);
        }

        #[test]
        fn ranges_and_map(n in 5usize..9,
                          m in (0u64..4).prop_map(|v| v * 2)) {
            prop_assert!((5..9).contains(&n));
            prop_assert!(m % 2 == 0 && m <= 6);
        }

        #[test]
        fn assume_rejects_without_failing(k in any::<u8>()) {
            prop_assume!(k % 2 == 0);
            prop_assert!(k % 2 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::{any, Strategy};
        use rand::{rngs::StdRng, SeedableRng};
        let mut a = StdRng::seed_from_u64(crate::fnv1a("some_test"));
        let mut b = StdRng::seed_from_u64(crate::fnv1a("some_test"));
        let s = any::<u64>();
        let va: Vec<u64> = (0..8).map(|_| s.generate(&mut a)).collect();
        let vb: Vec<u64> = (0..8).map(|_| s.generate(&mut b)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in any::<u32>()) {
                prop_assert!(x != x, "impossible");
            }
        }
        always_fails();
    }
}
