//! Minimal lossless JSON for the metering stack.
//!
//! The designer's lock database and the benchmark harness's timing sidecar
//! both need a wire format in an environment without crates.io. This crate
//! implements a small JSON value model with three properties the stack
//! depends on:
//!
//! 1. **Lossless integers.** `u64`/`i64` round-trip exactly (scramble codes
//!    and key symbols are full-width random words; an f64-backed model
//!    would corrupt them above 2⁵³).
//! 2. **Deterministic output.** Objects keep insertion order and floats
//!    print via Rust's shortest-roundtrip formatter, so equal values always
//!    produce byte-identical text — the determinism contract of the
//!    evaluation harness extends to its JSON artifacts.
//! 3. **Strict, total parsing.** The parser accepts exactly the JSON this
//!    crate writes (plus standard whitespace), never panics on malformed
//!    input, and reports positioned errors.

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer, written without decimal point.
    U64(u64),
    /// Negative integer, written without decimal point.
    I64(i64),
    /// Finite float (NaN/inf are rejected at write time).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// A positioned parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (accepting non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `f64` (accepting integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation (stable, human-diffable).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(*v, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a positioned [`ParseError`] on malformed input or trailing
    /// garbage.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    /// Compact JSON text (so `to_string()` serializes).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_f64(v: f64, out: &mut String) {
    assert!(v.is_finite(), "JSON cannot represent non-finite floats");
    let s = format!("{v}");
    out.push_str(&s);
    // Keep floats distinguishable from integers on re-parse.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.error("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.error("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{kw}'")))
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<i64>().is_ok() {
                    return Ok(Json::I64(text.parse().expect("checked")));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| ParseError {
                offset: start,
                message: format!("invalid number '{text}'"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_losslessly() {
        for v in [0u64, 1, 2u64.pow(53) + 1, u64::MAX] {
            let text = Json::U64(v).to_string();
            assert_eq!(Json::parse(&text).unwrap(), Json::U64(v), "{text}");
        }
    }

    #[test]
    fn object_round_trip_preserves_order_and_types() {
        let j = Json::obj(vec![
            ("b", Json::U64(u64::MAX)),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null, Json::F64(1.5)])),
            ("s", Json::Str("quote \" slash \\ nl \n".into())),
            ("neg", Json::I64(-42)),
        ]);
        let compact = j.to_string();
        assert_eq!(Json::parse(&compact).unwrap(), j);
        let pretty = j.to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), j);
        // Deterministic output: same value, same bytes.
        assert_eq!(compact, Json::parse(&pretty).unwrap().to_string());
    }

    #[test]
    fn floats_stay_floats() {
        let text = Json::F64(2.0).to_string();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::F64(2.0));
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\":}", "nul", "01x", "\"unterminated",
            "{\"a\":1,}", "[1 2]", "1 2", "\"bad \\q escape\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_navigate() {
        let j = Json::parse("{\"meta\": {\"seed\": 42, \"ok\": true}, \"xs\": [1, 2]}").unwrap();
        assert_eq!(j.get("meta").and_then(|m| m.get("seed")).and_then(Json::as_u64), Some(42));
        assert_eq!(j.get("meta").and_then(|m| m.get("ok")).and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("xs").and_then(Json::as_arr).map(|a| a.len()), Some(2));
    }
}
