//! Switching-activity power estimation.
//!
//! Propagates static signal probabilities through the combinational logic
//! under the usual spatial-independence assumption, converts them to
//! transition densities (`a = 2·p·(1−p)` per cycle under temporal
//! independence), and charges each net `C_load × activity` dynamic power
//! plus per-cell leakage and per-flip-flop clock power.
//!
//! The absolute scale is arbitrary (see the crate docs); the
//! [`ActivityModel::power_scale`] factor puts the synthesized ISCAS'89
//! profiles in the same numeric range as the paper's SIS numbers.

use crate::{CellLibrary, Netlist};

/// Parameters of the power model.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityModel {
    /// Static probability of each primary input being 1.
    pub input_probability: f64,
    /// Static probability of each flip-flop output being 1.
    pub state_probability: f64,
    /// Multiplier converting `Σ cap × activity` into the report's power
    /// units.
    pub power_scale: f64,
}

impl Default for ActivityModel {
    fn default() -> Self {
        ActivityModel {
            input_probability: 0.5,
            state_probability: 0.5,
            power_scale: 20.0,
        }
    }
}

/// Per-net probability/activity and the total power.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Probability that each net is 1, indexed by `NetId::index()`.
    pub probability: Vec<f64>,
    /// Transitions per cycle on each net.
    pub activity: Vec<f64>,
    /// Dynamic power (switching).
    pub dynamic: f64,
    /// Static leakage power.
    pub leakage: f64,
    /// Flip-flop clock power.
    pub clock: f64,
}

impl PowerReport {
    /// Total power.
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage + self.clock
    }
}

/// Runs the power analysis.
pub fn analyze(netlist: &Netlist, lib: &CellLibrary, model: &ActivityModel) -> PowerReport {
    let n = netlist.nets().len();
    let mut probability = vec![0.0f64; n];
    for &i in netlist.inputs() {
        probability[i.index()] = model.input_probability;
    }
    for ff in netlist.flip_flops() {
        probability[ff.q.index()] = model.state_probability;
    }
    let mut scratch = Vec::with_capacity(4);
    for &gid in netlist.topological_order() {
        let g = &netlist.gates()[gid.index()];
        scratch.clear();
        scratch.extend(g.inputs.iter().map(|i| probability[i.index()]));
        probability[g.output.index()] = g.kind.output_probability(&scratch);
    }

    let activity: Vec<f64> = probability.iter().map(|p| 2.0 * p * (1.0 - p)).collect();

    // Load per net.
    let mut load = vec![0.0f64; n];
    for g in netlist.gates() {
        let cap = lib.cell(g.kind).input_cap;
        for &i in &g.inputs {
            load[i.index()] += cap;
        }
    }
    for ff in netlist.flip_flops() {
        load[ff.d.index()] += lib.dff_input_cap();
    }

    let dynamic: f64 = (0..n).map(|i| load[i] * activity[i]).sum::<f64>() * model.power_scale;
    let leakage: f64 = netlist
        .gates()
        .iter()
        .map(|g| lib.cell(g.kind).leakage)
        .sum();
    let clock = netlist.flip_flops().len() as f64 * lib.dff_clock_power();
    PowerReport {
        probability,
        activity,
        dynamic,
        leakage,
        clock,
    }
}

/// Convenience wrapper returning only the total power.
pub fn estimate(netlist: &Netlist, lib: &CellLibrary, model: &ActivityModel) -> f64 {
    analyze(netlist, lib, model).total()
}

/// Monte-Carlo power estimation: simulate `cycles` clock cycles with random
/// primary inputs (each high with `model.input_probability`), count actual
/// net toggles, and charge the same `C·activity` model as [`analyze`].
/// Slower but assumption-free — the cross-check for the static estimate's
/// spatial-independence approximation.
pub fn simulate<R: rand::Rng + ?Sized>(
    netlist: &Netlist,
    lib: &CellLibrary,
    model: &ActivityModel,
    cycles: usize,
    rng: &mut R,
) -> PowerReport {
    use hwm_logic::Bits;
    let n = netlist.nets().len();
    let mut toggles = vec![0u64; n];
    let mut state: Bits = netlist.flip_flops().iter().map(|ff| ff.init).collect();
    // Values of every net on the previous cycle, for toggle counting.
    let mut prev: Option<Vec<bool>> = None;
    for _ in 0..cycles {
        let pi: Bits = (0..netlist.inputs().len())
            .map(|_| rng.random_bool(model.input_probability))
            .collect();
        let values = net_values(netlist, &pi, &state);
        if let Some(p) = &prev {
            for i in 0..n {
                if p[i] != values[i] {
                    toggles[i] += 1;
                }
            }
        }
        state = netlist
            .flip_flops()
            .iter()
            .map(|ff| values[ff.d.index()])
            .collect();
        prev = Some(values);
    }
    let denom = cycles.saturating_sub(1).max(1) as f64;
    let activity: Vec<f64> = toggles.iter().map(|&t| t as f64 / denom).collect();
    let probability = vec![f64::NAN; n]; // not tracked by the simulator
    let mut load = vec![0.0f64; n];
    for g in netlist.gates() {
        let cap = lib.cell(g.kind).input_cap;
        for &i in &g.inputs {
            load[i.index()] += cap;
        }
    }
    for ff in netlist.flip_flops() {
        load[ff.d.index()] += lib.dff_input_cap();
    }
    let dynamic: f64 = (0..n).map(|i| load[i] * activity[i]).sum::<f64>() * model.power_scale;
    let leakage: f64 = netlist
        .gates()
        .iter()
        .map(|g| lib.cell(g.kind).leakage)
        .sum();
    let clock = netlist.flip_flops().len() as f64 * lib.dff_clock_power();
    PowerReport {
        probability,
        activity,
        dynamic,
        leakage,
        clock,
    }
}

/// Evaluates every net for one cycle (like `Netlist::eval` but returning
/// all net values, for toggle accounting).
fn net_values(netlist: &Netlist, pi: &hwm_logic::Bits, state: &hwm_logic::Bits) -> Vec<bool> {
    let mut value = vec![false; netlist.nets().len()];
    for (i, &net) in netlist.inputs().iter().enumerate() {
        value[net.index()] = pi.get(i);
    }
    for (i, ff) in netlist.flip_flops().iter().enumerate() {
        value[ff.q.index()] = state.get(i);
    }
    let mut scratch = Vec::with_capacity(4);
    for &gid in netlist.topological_order() {
        let g = &netlist.gates()[gid.index()];
        scratch.clear();
        scratch.extend(g.inputs.iter().map(|n| value[n.index()]));
        value[g.output.index()] = g.kind.eval(&scratch);
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, NetlistBuilder};

    #[test]
    fn probabilities_propagate() {
        let lib = CellLibrary::generic();
        let mut b = NetlistBuilder::new("p");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.gate(CellKind::And(2), &[a, c]);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let rep = analyze(&nl, &lib, &ActivityModel::default());
        let y_net = nl.outputs()[0].1;
        assert!((rep.probability[y_net.index()] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn more_gates_more_power() {
        let lib = CellLibrary::generic();
        let build = |n_gates: usize| {
            let mut b = NetlistBuilder::new("p");
            let a = b.input("a");
            let mut last = a;
            for _ in 0..n_gates {
                last = b.gate(CellKind::Inv, &[last]);
            }
            b.output("y", last);
            b.finish().unwrap()
        };
        let p2 = estimate(&build(2), &lib, &ActivityModel::default());
        let p20 = estimate(&build(20), &lib, &ActivityModel::default());
        assert!(p20 > p2);
    }

    #[test]
    fn quiet_inputs_reduce_dynamic_power() {
        let lib = CellLibrary::generic();
        let mut b = NetlistBuilder::new("p");
        let a = b.input("a");
        let y = b.gate(CellKind::Buf, &[a]);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let busy = analyze(&nl, &lib, &ActivityModel::default());
        let quiet = analyze(
            &nl,
            &lib,
            &ActivityModel {
                input_probability: 0.99,
                ..ActivityModel::default()
            },
        );
        assert!(quiet.dynamic < busy.dynamic);
    }

    #[test]
    fn monte_carlo_agrees_with_static_on_combinational_logic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // A random-ish combinational block: independence holds reasonably,
        // so the two estimates should land within ~20%.
        let lib = CellLibrary::generic();
        let mut b = NetlistBuilder::new("p");
        let ins: Vec<_> = (0..6).map(|i| b.input(format!("i{i}"))).collect();
        let g1 = b.gate(CellKind::Nand(2), &[ins[0], ins[1]]);
        let g2 = b.gate(CellKind::Nor(2), &[ins[2], ins[3]]);
        let g3 = b.gate(CellKind::Xor2, &[ins[4], ins[5]]);
        let g4 = b.gate(CellKind::And(3), &[g1, g2, g3]);
        let g5 = b.gate(CellKind::Or(2), &[g4, g1]);
        b.output("y", g5);
        let nl = b.finish().unwrap();
        let model = ActivityModel::default();
        let stat = analyze(&nl, &lib, &model);
        let mut rng = StdRng::seed_from_u64(17);
        let sim = simulate(&nl, &lib, &model, 20_000, &mut rng);
        let ratio = sim.dynamic / stat.dynamic;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "simulated {} vs static {} (ratio {ratio})",
            sim.dynamic,
            stat.dynamic
        );
        assert_eq!(sim.total() - sim.dynamic, stat.total() - stat.dynamic);
    }

    #[test]
    fn monte_carlo_sees_reconvergent_correlation() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // x XOR x is constantly 0: the simulator knows, the static model
        // (independence assumption) charges activity. This documents the
        // static model's known bias.
        let lib = CellLibrary::generic();
        let mut b = NetlistBuilder::new("p");
        let x = b.input("x");
        let y = b.gate(CellKind::Xor2, &[x, x]);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let model = ActivityModel::default();
        let stat = analyze(&nl, &lib, &model);
        let mut rng = StdRng::seed_from_u64(18);
        let sim = simulate(&nl, &lib, &model, 5_000, &mut rng);
        let y_net = nl.outputs()[0].1;
        assert_eq!(sim.activity[y_net.index()], 0.0);
        assert!(stat.activity[y_net.index()] > 0.0);
    }

    #[test]
    fn ff_contributes_clock_power() {
        let lib = CellLibrary::generic();
        let mut b = NetlistBuilder::new("p");
        let q = b.net("q");
        let n = b.gate(CellKind::Inv, &[q]);
        b.flip_flop_onto(n, q, false);
        let nl = b.finish().unwrap();
        let rep = analyze(&nl, &lib, &ActivityModel::default());
        assert!(rep.clock > 0.0);
        assert!(rep.total() > rep.dynamic);
    }
}
