//! Structural Verilog emission.
//!
//! Writes a mapped netlist as a synthesizable structural Verilog module over
//! the generic cell library (each cell becomes a primitive-gate instance, the
//! flip-flops an `always @(posedge clk)` block). Emission-only: the workspace
//! consumes BLIF, Verilog is for inspection and downstream tools.

use crate::{CellKind, Netlist};
use std::fmt::Write as _;

/// Renders the netlist as a structural Verilog module.
pub fn emit(netlist: &Netlist) -> String {
    let mut out = String::new();
    let name = sanitize(netlist.name());
    let _ = writeln!(out, "module {name} (");
    let _ = writeln!(out, "  input wire clk,");
    for &i in netlist.inputs() {
        let _ = writeln!(out, "  input wire {},", sanitize(netlist.net_name(i)));
    }
    for (i, (pname, _)) in netlist.outputs().iter().enumerate() {
        let comma = if i + 1 == netlist.outputs().len() { "" } else { "," };
        let _ = writeln!(out, "  output wire po_{}{}", sanitize(pname), comma);
    }
    let _ = writeln!(out, ");");

    // Wire declarations for gate outputs and FF outputs.
    for g in netlist.gates() {
        let _ = writeln!(out, "  wire {};", sanitize(netlist.net_name(g.output)));
    }
    for ff in netlist.flip_flops() {
        let _ = writeln!(out, "  reg {};", sanitize(netlist.net_name(ff.q)));
    }

    for (pname, net) in netlist.outputs() {
        let _ = writeln!(
            out,
            "  assign po_{} = {};",
            sanitize(pname),
            sanitize(netlist.net_name(*net))
        );
    }

    for (i, g) in netlist.gates().iter().enumerate() {
        let ins: Vec<String> = g
            .inputs
            .iter()
            .map(|n| sanitize(netlist.net_name(*n)))
            .collect();
        let o = sanitize(netlist.net_name(g.output));
        let inst = format!("g{i}");
        let line = match g.kind {
            CellKind::Const0 => format!("  assign {o} = 1'b0;"),
            CellKind::Const1 => format!("  assign {o} = 1'b1;"),
            CellKind::Buf => format!("  buf {inst} ({o}, {});", ins[0]),
            CellKind::Inv => format!("  not {inst} ({o}, {});", ins[0]),
            CellKind::And(_) => format!("  and {inst} ({o}, {});", ins.join(", ")),
            CellKind::Or(_) => format!("  or {inst} ({o}, {});", ins.join(", ")),
            CellKind::Nand(_) => format!("  nand {inst} ({o}, {});", ins.join(", ")),
            CellKind::Nor(_) => format!("  nor {inst} ({o}, {});", ins.join(", ")),
            CellKind::Xor2 => format!("  xor {inst} ({o}, {});", ins.join(", ")),
            CellKind::Xnor2 => format!("  xnor {inst} ({o}, {});", ins.join(", ")),
            CellKind::Mux2 => format!(
                "  assign {o} = {} ? {} : {};",
                ins[0], ins[2], ins[1]
            ),
        };
        let _ = writeln!(out, "{line}");
    }

    if !netlist.flip_flops().is_empty() {
        let _ = writeln!(out, "  always @(posedge clk) begin");
        for ff in netlist.flip_flops() {
            let _ = writeln!(
                out,
                "    {} <= {};",
                sanitize(netlist.net_name(ff.q)),
                sanitize(netlist.net_name(ff.d))
            );
        }
        let _ = writeln!(out, "  end");
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn emits_module_with_gates_and_ffs() {
        let mut b = NetlistBuilder::new("demo");
        let a = b.input("a");
        let q = b.net("q0");
        let x = b.gate(CellKind::Xor2, &[a, q]);
        b.flip_flop_onto(x, q, false);
        b.output("y", q);
        let nl = b.finish().unwrap();
        let v = emit(&nl);
        assert!(v.contains("module demo"));
        assert!(v.contains("xor"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn sanitizes_leading_digit() {
        assert_eq!(sanitize("1bad"), "n1bad");
        assert_eq!(sanitize("ok-name"), "ok_name");
    }
}
