//! Gate-level netlist substrate for the hardware-metering workspace.
//!
//! Models what the paper obtains from Berkeley SIS plus a generic standard
//! cell library: mapped netlists with area, critical-path delay and
//! switching-activity power estimates. The estimates use a consistent cost
//! model (SIS-like arbitrary units) — the workspace cares about *relative*
//! overheads, which survive any consistent model.
//!
//! * [`CellKind`] / [`Cell`] / [`CellLibrary`] — the target technology;
//! * [`Netlist`] / [`NetlistBuilder`] — the mapped design;
//! * [`sta`] — topological static timing analysis;
//! * [`power`] — signal-probability / transition-density power estimation;
//! * [`blif`] and [`verilog`] — interchange formats.
//!
//! # Example
//!
//! Build a tiny 2-gate netlist and query its cost:
//!
//! ```
//! use hwm_netlist::{CellKind, CellLibrary, NetlistBuilder};
//!
//! let lib = CellLibrary::generic();
//! let mut b = NetlistBuilder::new("demo");
//! let a = b.input("a");
//! let c = b.input("b");
//! let n1 = b.gate(CellKind::Nand(2), &[a, c]);
//! let q = b.gate(CellKind::Inv, &[n1]);
//! b.output("y", q);
//! let nl = b.finish().unwrap();
//! let stats = nl.stats(&lib);
//! assert!(stats.area > 0.0);
//! assert_eq!(stats.gates, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod graph;
pub mod blif;
pub mod power;
pub mod sta;
pub mod verilog;

pub use cell::{Cell, CellKind, CellLibrary};
pub use graph::{FlipFlop, Gate, GateId, InstancePorts, Net, NetId, Netlist, NetlistBuilder};

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Aggregate cost report for a mapped netlist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignStats {
    /// Total cell area (SIS-like arbitrary units).
    pub area: f64,
    /// Critical path delay (arbitrary time units).
    pub delay: f64,
    /// Estimated power (arbitrary power units).
    pub power: f64,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of flip-flops.
    pub ffs: usize,
}

impl DesignStats {
    /// Fractional overhead of `new` relative to `self` for a metric selected
    /// by the closure, e.g. `base.overhead(&boosted, |s| s.area)`.
    pub fn overhead(&self, new: &DesignStats, metric: impl Fn(&DesignStats) -> f64) -> f64 {
        let base = metric(self);
        if base == 0.0 {
            return 0.0;
        }
        (metric(new) - base) / base
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "area {:.1}, delay {:.2}, power {:.1}, {} gates, {} FFs",
            self.area, self.delay, self.power, self.gates, self.ffs
        )
    }
}

/// Errors produced while constructing or analysing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net is driven by more than one source.
    MultipleDrivers {
        /// Name of the offending net.
        net: String,
    },
    /// A net has no driver.
    Undriven {
        /// Name of the offending net.
        net: String,
    },
    /// The combinational logic contains a cycle.
    CombinationalCycle,
    /// A gate was created with the wrong number of inputs for its cell.
    ArityMismatch {
        /// The cell kind.
        kind: CellKind,
        /// Number of inputs supplied.
        got: usize,
    },
    /// Text being parsed was not valid BLIF.
    ParseBlif {
        /// Line number (1-based).
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => write!(f, "net {net:?} has multiple drivers"),
            NetlistError::Undriven { net } => write!(f, "net {net:?} has no driver"),
            NetlistError::CombinationalCycle => write!(f, "combinational cycle detected"),
            NetlistError::ArityMismatch { kind, got } => {
                write!(f, "cell {kind:?} cannot take {got} inputs")
            }
            NetlistError::ParseBlif { line, message } => {
                write!(f, "BLIF parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}
