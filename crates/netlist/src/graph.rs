//! The netlist graph and its builder.

use crate::{CellKind, CellLibrary, DesignStats, NetlistError};
use hwm_logic::Bits;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a net (wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

/// Identifier of a combinational gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GateId(pub(crate) u32);

impl NetId {
    /// Raw index of the net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// Raw index of the gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A wire in the netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    /// Human-readable name.
    pub name: String,
}

/// A combinational gate instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Logic function.
    pub kind: CellKind,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

/// A D flip-flop instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlipFlop {
    /// Data input net.
    pub d: NetId,
    /// Output net.
    pub q: NetId,
    /// Power-up / reset value when simulated deterministically.
    pub init: bool,
}

/// A mapped gate-level netlist.
///
/// Construct with [`NetlistBuilder`]; the finished netlist is validated
/// (single driver per net, no combinational cycles) and immutable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    ffs: Vec<FlipFlop>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    topo: Vec<GateId>,
}

impl Netlist {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All combinational gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All flip-flops.
    pub fn flip_flops(&self) -> &[FlipFlop] {
        &self.ffs
    }

    /// Primary input nets.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as (name, net) pairs.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Gates in topological (fanin-before-fanout) order.
    pub fn topological_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Name of a net.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.nets[id.index()].name
    }

    /// Number of fanout pins of each net (gate pins plus FF D pins plus
    /// primary outputs).
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut fanout = vec![0usize; self.nets.len()];
        for g in &self.gates {
            for &i in &g.inputs {
                fanout[i.index()] += 1;
            }
        }
        for ff in &self.ffs {
            fanout[ff.d.index()] += 1;
        }
        for (_, o) in &self.outputs {
            fanout[o.index()] += 1;
        }
        fanout
    }

    /// Evaluates the combinational logic for one clock cycle.
    ///
    /// `pi` are the primary-input values (in [`Netlist::inputs`] order) and
    /// `state` the current flip-flop values (in [`Netlist::flip_flops`]
    /// order). Returns `(primary outputs, next state)`.
    ///
    /// # Panics
    ///
    /// Panics if the widths do not match the interface.
    pub fn eval(&self, pi: &Bits, state: &Bits) -> (Bits, Bits) {
        assert_eq!(pi.len(), self.inputs.len(), "primary input width mismatch");
        assert_eq!(state.len(), self.ffs.len(), "state width mismatch");
        let mut value = vec![false; self.nets.len()];
        for (i, &net) in self.inputs.iter().enumerate() {
            value[net.index()] = pi.get(i);
        }
        for (i, ff) in self.ffs.iter().enumerate() {
            value[ff.q.index()] = state.get(i);
        }
        let mut scratch = Vec::with_capacity(4);
        for &gid in &self.topo {
            let g = &self.gates[gid.index()];
            scratch.clear();
            scratch.extend(g.inputs.iter().map(|n| value[n.index()]));
            value[g.output.index()] = g.kind.eval(&scratch);
        }
        let po = self
            .outputs
            .iter()
            .map(|(_, n)| value[n.index()])
            .collect::<Bits>();
        let next = self.ffs.iter().map(|ff| value[ff.d.index()]).collect::<Bits>();
        (po, next)
    }

    /// Total cell area under the given library.
    pub fn area(&self, lib: &CellLibrary) -> f64 {
        let gate_area: f64 = self.gates.iter().map(|g| lib.cell(g.kind).area).sum();
        gate_area + self.ffs.len() as f64 * lib.dff_area()
    }

    /// Full cost report: area, critical-path delay, power.
    pub fn stats(&self, lib: &CellLibrary) -> DesignStats {
        DesignStats {
            area: self.area(lib),
            delay: crate::sta::critical_path_delay(self, lib),
            power: crate::power::estimate(self, lib, &crate::power::ActivityModel::default()),
            gates: self.gates.len(),
            ffs: self.ffs.len(),
        }
    }

    /// Merges another netlist into this one side by side (disjoint logic,
    /// shared nothing), returning the combined netlist. Primary inputs and
    /// outputs of both designs are preserved; names are prefixed to stay
    /// unique. This models placing an added block (e.g. a BFSM) on the same
    /// die as the original design.
    pub fn merged_with(&self, other: &Netlist, other_prefix: &str) -> Netlist {
        let mut b = NetlistBuilder::new(format!("{}+{}", self.name, other.name));
        let mut map_self: Vec<NetId> = Vec::with_capacity(self.nets.len());
        for net in &self.nets {
            map_self.push(b.net(net.name.clone()));
        }
        let mut map_other: Vec<NetId> = Vec::with_capacity(other.nets.len());
        for net in &other.nets {
            map_other.push(b.net(format!("{other_prefix}{}", net.name)));
        }
        let add = |nl: &Netlist, map: &[NetId], b: &mut NetlistBuilder, prefix: &str| {
            for &i in &nl.inputs {
                b.mark_input(map[i.index()]);
            }
            for (name, o) in &nl.outputs {
                b.output(format!("{prefix}{name}"), map[o.index()]);
            }
            for g in &nl.gates {
                let ins: Vec<NetId> = g.inputs.iter().map(|n| map[n.index()]).collect();
                b.gate_onto(g.kind, &ins, map[g.output.index()]);
            }
            for ff in &nl.ffs {
                b.flip_flop_onto(map[ff.d.index()], map[ff.q.index()], ff.init);
            }
        };
        add(self, &map_self, &mut b, "");
        add(other, &map_other, &mut b, other_prefix);
        b.finish().expect("merging two valid netlists cannot fail")
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PIs, {} POs, {} gates, {} FFs",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.gates.len(),
            self.ffs.len()
        )
    }
}

/// Incremental builder for [`Netlist`].
///
/// # Example
///
/// ```
/// use hwm_netlist::{CellKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("xor_ff");
/// let a = b.input("a");
/// let q0 = b.net("q0");
/// let x = b.gate(CellKind::Xor2, &[a, q0]);
/// b.flip_flop_onto(x, q0, false); // toggle register
/// b.output("y", q0);
/// let nl = b.finish().unwrap();
/// assert_eq!(nl.flip_flops().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    ffs: Vec<FlipFlop>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    names: HashMap<String, u32>,
}

impl NetlistBuilder {
    /// Starts building a netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            ffs: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            names: HashMap::new(),
        }
    }

    /// Creates a new net; the name is uniquified if already present.
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        let mut name = name.into();
        if let Some(n) = self.names.get_mut(&name) {
            *n += 1;
            name = format!("{name}__{n}");
        } else {
            self.names.insert(name.clone(), 0);
        }
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name });
        id
    }

    /// Creates a primary input net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.net(name);
        self.inputs.push(id);
        id
    }

    /// Marks an existing net as a primary input.
    pub fn mark_input(&mut self, net: NetId) {
        self.inputs.push(net);
    }

    /// Declares a primary output driven by `net`.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Instantiates a gate driving a fresh net, which is returned.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match the cell arity.
    pub fn gate(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        let out = self.net(format!("n{}", self.nets.len()));
        self.gate_onto(kind, inputs, out);
        out
    }

    /// Instantiates a gate driving an existing net.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match the cell arity.
    pub fn gate_onto(&mut self, kind: CellKind, inputs: &[NetId], output: NetId) {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "cell {kind:?} takes {} inputs, got {}",
            kind.arity(),
            inputs.len()
        );
        assert!(kind.is_valid(), "invalid cell kind {kind:?}");
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
    }

    /// Instantiates a D flip-flop with a fresh Q net, which is returned.
    pub fn flip_flop(&mut self, d: NetId, init: bool) -> NetId {
        let q = self.net(format!("q{}", self.ffs.len()));
        self.flip_flop_onto(d, q, init);
        q
    }

    /// Instantiates a D flip-flop onto an existing Q net.
    pub fn flip_flop_onto(&mut self, d: NetId, q: NetId, init: bool) {
        self.ffs.push(FlipFlop { d, q, init });
    }

    /// Number of nets created so far.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Inlines `child` into this builder as a sub-block: the child's primary
    /// inputs are connected to `input_nets` (in the child's input order),
    /// all gates and flip-flops are copied (net names prefixed), and the
    /// ports of the instance are returned. The child's primary outputs do
    /// **not** become outputs of the parent — wire them as needed.
    ///
    /// # Panics
    ///
    /// Panics if `input_nets.len()` differs from the child's input count.
    pub fn instantiate(
        &mut self,
        child: &Netlist,
        input_nets: &[NetId],
        prefix: &str,
    ) -> InstancePorts {
        assert_eq!(
            input_nets.len(),
            child.inputs.len(),
            "instance of {} needs {} input nets, got {}",
            child.name,
            child.inputs.len(),
            input_nets.len()
        );
        let mut map: Vec<Option<NetId>> = vec![None; child.nets.len()];
        for (i, &pi) in child.inputs.iter().enumerate() {
            map[pi.index()] = Some(input_nets[i]);
        }
        let resolve = |b: &mut NetlistBuilder, map: &mut Vec<Option<NetId>>, id: NetId| {
            if let Some(n) = map[id.index()] {
                n
            } else {
                let n = b.net(format!("{prefix}{}", child.nets[id.index()].name));
                map[id.index()] = Some(n);
                n
            }
        };
        for g in &child.gates {
            let ins: Vec<NetId> = g
                .inputs
                .iter()
                .map(|&n| resolve(self, &mut map, n))
                .collect();
            let out = resolve(self, &mut map, g.output);
            self.gate_onto(g.kind, &ins, out);
        }
        let mut ff_qs = Vec::with_capacity(child.ffs.len());
        for ff in &child.ffs {
            let d = resolve(self, &mut map, ff.d);
            let q = resolve(self, &mut map, ff.q);
            self.flip_flop_onto(d, q, ff.init);
            ff_qs.push(q);
        }
        let outputs = child
            .outputs
            .iter()
            .map(|(_, o)| resolve(self, &mut map, *o))
            .collect();
        InstancePorts { outputs, ff_qs }
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MultipleDrivers`], [`NetlistError::Undriven`]
    /// or [`NetlistError::CombinationalCycle`] when the graph is malformed.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        // Driver check.
        let mut driver: Vec<Option<Driver>> = vec![None; self.nets.len()];
        for &net in &self.inputs {
            set_driver(&mut driver, &self.nets, net, Driver::Input)?;
        }
        for (i, g) in self.gates.iter().enumerate() {
            set_driver(&mut driver, &self.nets, g.output, Driver::Gate(i))?;
        }
        for ff in &self.ffs {
            set_driver(&mut driver, &self.nets, ff.q, Driver::FlipFlop)?;
        }
        for (net, d) in driver.iter().enumerate() {
            if d.is_none() {
                return Err(NetlistError::Undriven {
                    net: self.nets[net].name.clone(),
                });
            }
        }
        // Topological sort of gates (Kahn); FF Q pins and PIs are sources.
        let mut indegree = vec![0usize; self.gates.len()];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            for &input in &g.inputs {
                if let Some(Driver::Gate(j)) = driver[input.index()] {
                    indegree[i] += 1;
                    fanout[j].push(i);
                }
            }
        }
        let mut queue: Vec<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut topo = Vec::with_capacity(self.gates.len());
        while let Some(i) = queue.pop() {
            topo.push(GateId(i as u32));
            for &j in &fanout[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if topo.len() != self.gates.len() {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(Netlist {
            name: self.name,
            nets: self.nets,
            gates: self.gates,
            ffs: self.ffs,
            inputs: self.inputs,
            outputs: self.outputs,
            topo,
        })
    }
}

/// Ports of a child netlist inlined by [`NetlistBuilder::instantiate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstancePorts {
    /// Nets corresponding to the child's primary outputs, in order.
    pub outputs: Vec<NetId>,
    /// Nets corresponding to the child's flip-flop Q pins, in order.
    pub ff_qs: Vec<NetId>,
}

#[derive(Debug, Clone, Copy)]
enum Driver {
    Input,
    Gate(usize),
    FlipFlop,
}

fn set_driver(
    driver: &mut [Option<Driver>],
    nets: &[Net],
    net: NetId,
    d: Driver,
) -> Result<(), NetlistError> {
    let slot = &mut driver[net.index()];
    if slot.is_some() {
        return Err(NetlistError::MultipleDrivers {
            net: nets[net.index()].name.clone(),
        });
    }
    *slot = Some(d);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_ff() -> Netlist {
        let mut b = NetlistBuilder::new("xor_ff");
        let a = b.input("a");
        let q0 = b.net("q0");
        let x = b.gate(CellKind::Xor2, &[a, q0]);
        b.flip_flop_onto(x, q0, false);
        b.output("y", q0);
        b.finish().unwrap()
    }

    #[test]
    fn build_and_eval_toggle() {
        let nl = xor_ff();
        let (po, next) = nl.eval(&Bits::from_u64(1, 1), &Bits::from_u64(0, 1));
        assert_eq!(po.low_u64(), 0); // output is current state
        assert_eq!(next.low_u64(), 1); // toggles
        let (_, next2) = nl.eval(&Bits::from_u64(1, 1), &next);
        assert_eq!(next2.low_u64(), 0);
        let (_, hold) = nl.eval(&Bits::from_u64(0, 1), &Bits::from_u64(1, 1));
        assert_eq!(hold.low_u64(), 1); // holds when input is 0
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let n = b.net("n");
        b.gate_onto(CellKind::Inv, &[a], n);
        b.gate_onto(CellKind::Buf, &[a], n);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn undriven_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let n = b.net("floating");
        b.output("y", n);
        assert!(matches!(b.finish(), Err(NetlistError::Undriven { .. })));
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut b = NetlistBuilder::new("bad");
        let x = b.net("x");
        let y = b.net("y");
        b.gate_onto(CellKind::Inv, &[x], y);
        b.gate_onto(CellKind::Inv, &[y], x);
        assert_eq!(b.finish().unwrap_err(), NetlistError::CombinationalCycle);
    }

    #[test]
    fn sequential_loop_allowed() {
        // A loop through a flip-flop is fine.
        assert_eq!(xor_ff().gates().len(), 1);
    }

    #[test]
    fn names_uniquified() {
        let mut b = NetlistBuilder::new("n");
        let a = b.net("w");
        let c = b.net("w");
        assert_ne!(a, c);
    }

    #[test]
    fn merge_keeps_both() {
        let a = xor_ff();
        let b = xor_ff();
        let m = a.merged_with(&b, "bfsm_");
        assert_eq!(m.gates().len(), 2);
        assert_eq!(m.flip_flops().len(), 2);
        assert_eq!(m.inputs().len(), 2);
        assert_eq!(m.outputs().len(), 2);
        let lib = CellLibrary::generic();
        let sa = a.stats(&lib);
        let sm = m.stats(&lib);
        assert!((sm.area - 2.0 * sa.area).abs() < 1e-9);
    }

    #[test]
    fn stats_nonzero() {
        let lib = CellLibrary::generic();
        let s = xor_ff().stats(&lib);
        assert!(s.area > 0.0 && s.delay > 0.0 && s.power > 0.0);
        assert_eq!(s.ffs, 1);
    }
}

#[cfg(test)]
mod instantiate_tests {
    use super::*;
    use hwm_logic::Bits;

    #[test]
    fn instantiate_wires_child_logic() {
        // Child: y = !(a & b), one FF capturing y.
        let mut cb = NetlistBuilder::new("child");
        let a = cb.input("a");
        let b2 = cb.input("b");
        let y = cb.gate(CellKind::Nand(2), &[a, b2]);
        let q = cb.flip_flop(y, false);
        cb.output("y", y);
        cb.output("q", q);
        let child = cb.finish().unwrap();

        let mut pb = NetlistBuilder::new("parent");
        let x = pb.input("x");
        let one = pb.gate(CellKind::Const1, &[]);
        let ports = pb.instantiate(&child, &[x, one], "u0_");
        pb.output("z", ports.outputs[0]);
        pb.output("zq", ports.ff_qs[0]);
        let parent = pb.finish().unwrap();
        assert_eq!(parent.flip_flops().len(), 1);
        // z = !(x & 1) = !x.
        let (po, ns) = parent.eval(&Bits::from_u64(1, 1), &Bits::from_u64(0, 1));
        assert!(!po.get(0));
        assert!(!ns.get(0));
        let (po, _) = parent.eval(&Bits::from_u64(0, 1), &Bits::from_u64(0, 1));
        assert!(po.get(0));
    }

    #[test]
    fn two_instances_stay_disjoint() {
        let mut cb = NetlistBuilder::new("inv");
        let a = cb.input("a");
        let y = cb.gate(CellKind::Inv, &[a]);
        cb.output("y", y);
        let child = cb.finish().unwrap();

        let mut pb = NetlistBuilder::new("parent");
        let x = pb.input("x");
        let p0 = pb.instantiate(&child, &[x], "u0_");
        let p1 = pb.instantiate(&child, &[p0.outputs[0]], "u1_");
        pb.output("z", p1.outputs[0]);
        let parent = pb.finish().unwrap();
        assert_eq!(parent.gates().len(), 2);
        let (po, _) = parent.eval(&Bits::from_u64(1, 1), &Bits::zeros(0));
        assert!(po.get(0)); // double inversion
    }
}
