//! Static timing analysis.
//!
//! Classic topological longest-path analysis with a linear delay model:
//! `delay(gate) = intrinsic + load_slope × (Σ fanout input caps)`.
//! Primary inputs arrive at time 0; flip-flop outputs arrive at clock-to-Q.
//! The critical path is the maximum over primary-output arrivals and
//! flip-flop D arrivals plus setup.

use crate::{CellLibrary, Netlist};

/// Per-net arrival times plus the overall critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Arrival time for every net, indexed by `NetId::index()`.
    pub arrival: Vec<f64>,
    /// The critical-path delay of the design.
    pub critical_path: f64,
}

/// Computes arrival times and the critical path.
pub fn analyze(netlist: &Netlist, lib: &CellLibrary) -> TimingReport {
    let mut arrival = vec![0.0f64; netlist.nets().len()];
    // Load on each net: sum of the input caps of the pins it drives.
    let mut load = vec![0.0f64; netlist.nets().len()];
    for g in netlist.gates() {
        let cap = lib.cell(g.kind).input_cap;
        for &i in &g.inputs {
            load[i.index()] += cap;
        }
    }
    for ff in netlist.flip_flops() {
        load[ff.d.index()] += lib.dff_input_cap();
    }
    for (_, o) in netlist.outputs() {
        load[o.index()] += 1.0; // output pad load
    }

    for ff in netlist.flip_flops() {
        arrival[ff.q.index()] = lib.dff_clk_to_q();
    }
    for &gid in netlist.topological_order() {
        let g = &netlist.gates()[gid.index()];
        let cell = lib.cell(g.kind);
        let input_arrival = g
            .inputs
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0f64, f64::max);
        arrival[g.output.index()] =
            input_arrival + cell.intrinsic_delay + cell.load_slope * load[g.output.index()];
    }

    let mut critical: f64 = 0.0;
    for (_, o) in netlist.outputs() {
        critical = critical.max(arrival[o.index()]);
    }
    for ff in netlist.flip_flops() {
        critical = critical.max(arrival[ff.d.index()] + lib.dff_setup());
    }
    TimingReport {
        arrival,
        critical_path: critical,
    }
}

/// Convenience wrapper returning only the critical-path delay.
pub fn critical_path_delay(netlist: &Netlist, lib: &CellLibrary) -> f64 {
    analyze(netlist, lib).critical_path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, NetlistBuilder};

    #[test]
    fn chain_delay_accumulates() {
        let lib = CellLibrary::generic();
        let mut short = NetlistBuilder::new("short");
        let a = short.input("a");
        let y = short.gate(CellKind::Inv, &[a]);
        short.output("y", y);
        let short = short.finish().unwrap();

        let mut long = NetlistBuilder::new("long");
        let a = long.input("a");
        let mut n = a;
        for _ in 0..10 {
            n = long.gate(CellKind::Inv, &[n]);
        }
        long.output("y", n);
        let long = long.finish().unwrap();

        let ds = critical_path_delay(&short, &lib);
        let dl = critical_path_delay(&long, &lib);
        assert!(dl > 5.0 * ds, "long chain {dl} should dwarf single inverter {ds}");
    }

    #[test]
    fn fanout_increases_delay() {
        let lib = CellLibrary::generic();
        let build = |fanout: usize| {
            let mut b = NetlistBuilder::new("f");
            let a = b.input("a");
            let n = b.gate(CellKind::Inv, &[a]);
            for i in 0..fanout {
                let o = b.gate(CellKind::Buf, &[n]);
                b.output(format!("y{i}"), o);
            }
            b.finish().unwrap()
        };
        let d1 = critical_path_delay(&build(1), &lib);
        let d8 = critical_path_delay(&build(8), &lib);
        assert!(d8 > d1);
    }

    #[test]
    fn registered_path_uses_clk_to_q_and_setup() {
        let lib = CellLibrary::generic();
        let mut b = NetlistBuilder::new("ff");
        let q = b.net("q");
        let n = b.gate(CellKind::Inv, &[q]);
        b.flip_flop_onto(n, q, false);
        let nl = b.finish().unwrap();
        let d = critical_path_delay(&nl, &lib);
        assert!(d >= lib.dff_clk_to_q() + lib.dff_setup());
    }
}
