//! The target standard-cell technology.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The logic function of a standard cell.
///
/// Arities for the variadic kinds are restricted to 2–4 inputs, matching a
/// typical mapped library; wider functions are decomposed by the synthesis
/// flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Constant 0 driver.
    Const0,
    /// Constant 1 driver.
    Const1,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// N-input AND (2 ≤ N ≤ 4).
    And(u8),
    /// N-input OR (2 ≤ N ≤ 4).
    Or(u8),
    /// N-input NAND (2 ≤ N ≤ 4).
    Nand(u8),
    /// N-input NOR (2 ≤ N ≤ 4).
    Nor(u8),
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer — inputs are `[sel, a, b]`, output `sel ? b : a`.
    Mux2,
}

impl CellKind {
    /// Number of inputs the cell takes.
    pub fn arity(self) -> usize {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0,
            CellKind::Buf | CellKind::Inv => 1,
            CellKind::And(n) | CellKind::Or(n) | CellKind::Nand(n) | CellKind::Nor(n) => {
                n as usize
            }
            CellKind::Xor2 | CellKind::Xnor2 => 2,
            CellKind::Mux2 => 3,
        }
    }

    /// Whether the arity is legal for this kind.
    pub fn is_valid(self) -> bool {
        match self {
            CellKind::And(n) | CellKind::Or(n) | CellKind::Nand(n) | CellKind::Nor(n) => {
                (2..=4).contains(&n)
            }
            _ => true,
        }
    }

    /// Evaluates the cell function on the given input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != arity()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.arity(), "{self:?} arity mismatch");
        match self {
            CellKind::Const0 => false,
            CellKind::Const1 => true,
            CellKind::Buf => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And(_) => inputs.iter().all(|&b| b),
            CellKind::Or(_) => inputs.iter().any(|&b| b),
            CellKind::Nand(_) => !inputs.iter().all(|&b| b),
            CellKind::Nor(_) => !inputs.iter().any(|&b| b),
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Mux2 => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// Probability that the output is 1 given independent input
    /// probabilities. Used by the power model.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != arity()`.
    pub fn output_probability(self, probs: &[f64]) -> f64 {
        assert_eq!(probs.len(), self.arity(), "{self:?} arity mismatch");
        match self {
            CellKind::Const0 => 0.0,
            CellKind::Const1 => 1.0,
            CellKind::Buf => probs[0],
            CellKind::Inv => 1.0 - probs[0],
            CellKind::And(_) => probs.iter().product(),
            CellKind::Nand(_) => 1.0 - probs.iter().product::<f64>(),
            CellKind::Or(_) => 1.0 - probs.iter().map(|p| 1.0 - p).product::<f64>(),
            CellKind::Nor(_) => probs.iter().map(|p| 1.0 - p).product(),
            CellKind::Xor2 => probs[0] + probs[1] - 2.0 * probs[0] * probs[1],
            CellKind::Xnor2 => 1.0 - (probs[0] + probs[1] - 2.0 * probs[0] * probs[1]),
            CellKind::Mux2 => probs[0] * probs[2] + (1.0 - probs[0]) * probs[1],
        }
    }

    /// A short SIS/genlib-flavoured name, e.g. `nand3`.
    pub fn name(self) -> String {
        match self {
            CellKind::Const0 => "zero".into(),
            CellKind::Const1 => "one".into(),
            CellKind::Buf => "buf".into(),
            CellKind::Inv => "inv".into(),
            CellKind::And(n) => format!("and{n}"),
            CellKind::Or(n) => format!("or{n}"),
            CellKind::Nand(n) => format!("nand{n}"),
            CellKind::Nor(n) => format!("nor{n}"),
            CellKind::Xor2 => "xor2".into(),
            CellKind::Xnor2 => "xnor2".into(),
            CellKind::Mux2 => "mux2".into(),
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Electrical and cost parameters of one library cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Logic function.
    pub kind: CellKind,
    /// Cell area (arbitrary units; an inverter is 1.0 in the generic library).
    pub area: f64,
    /// Intrinsic pin-to-pin delay.
    pub intrinsic_delay: f64,
    /// Delay added per unit of output load capacitance.
    pub load_slope: f64,
    /// Input pin capacitance (per pin).
    pub input_cap: f64,
    /// Static leakage power.
    pub leakage: f64,
}

/// A technology library: one [`Cell`] record per supported [`CellKind`].
///
/// # Example
///
/// ```
/// use hwm_netlist::{CellKind, CellLibrary};
///
/// let lib = CellLibrary::generic();
/// assert!(lib.cell(CellKind::Nand(3)).area > lib.cell(CellKind::Inv).area);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    name: String,
    dff_area: f64,
    dff_clk_to_q: f64,
    dff_setup: f64,
    dff_input_cap: f64,
    dff_clock_power: f64,
}

impl CellLibrary {
    /// The generic library used throughout the workspace. Units are chosen
    /// so that the synthesized benchmark circuits land in the same numeric
    /// range as the SIS numbers printed in the paper.
    pub fn generic() -> Self {
        CellLibrary {
            name: "generic".to_string(),
            dff_area: 2.0,
            dff_clk_to_q: 1.2,
            dff_setup: 0.4,
            dff_input_cap: 1.0,
            dff_clock_power: 16.0,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameters of the combinational cell implementing `kind`.
    ///
    /// # Panics
    ///
    /// Panics if the kind has an invalid arity (see [`CellKind::is_valid`]).
    pub fn cell(&self, kind: CellKind) -> Cell {
        assert!(kind.is_valid(), "invalid cell kind {kind:?}");
        let (area, intrinsic, slope) = match kind {
            CellKind::Const0 | CellKind::Const1 => (0.5, 0.0, 0.0),
            CellKind::Buf => (1.0, 0.7, 0.25),
            CellKind::Inv => (1.0, 0.4, 0.25),
            CellKind::Nand(n) => (1.0 + 0.5 * n as f64, 0.5 + 0.1 * n as f64, 0.3),
            CellKind::Nor(n) => (1.0 + 0.5 * n as f64, 0.55 + 0.12 * n as f64, 0.32),
            CellKind::And(n) => (1.5 + 0.5 * n as f64, 0.8 + 0.1 * n as f64, 0.28),
            CellKind::Or(n) => (1.5 + 0.5 * n as f64, 0.85 + 0.12 * n as f64, 0.3),
            CellKind::Xor2 => (3.0, 1.1, 0.35),
            CellKind::Xnor2 => (3.0, 1.1, 0.35),
            CellKind::Mux2 => (3.0, 1.0, 0.3),
        };
        Cell {
            kind,
            area,
            intrinsic_delay: intrinsic,
            load_slope: slope,
            input_cap: 1.0,
            leakage: 0.05 * area,
        }
    }

    /// Area of a D flip-flop.
    pub fn dff_area(&self) -> f64 {
        self.dff_area
    }

    /// Clock-to-Q delay of a D flip-flop.
    pub fn dff_clk_to_q(&self) -> f64 {
        self.dff_clk_to_q
    }

    /// Setup time of a D flip-flop.
    pub fn dff_setup(&self) -> f64 {
        self.dff_setup
    }

    /// D-pin input capacitance.
    pub fn dff_input_cap(&self) -> f64 {
        self.dff_input_cap
    }

    /// Per-cycle clock-tree/internal power of a D flip-flop.
    pub fn dff_clock_power(&self) -> f64 {
        self.dff_clock_power
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::generic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity() {
        assert_eq!(CellKind::Inv.arity(), 1);
        assert_eq!(CellKind::Nand(3).arity(), 3);
        assert_eq!(CellKind::Mux2.arity(), 3);
        assert_eq!(CellKind::Const1.arity(), 0);
    }

    #[test]
    fn validity() {
        assert!(CellKind::And(4).is_valid());
        assert!(!CellKind::And(5).is_valid());
        assert!(!CellKind::Nor(1).is_valid());
    }

    #[test]
    fn eval_gates() {
        assert!(CellKind::Nand(2).eval(&[true, false]));
        assert!(!CellKind::Nand(2).eval(&[true, true]));
        assert!(CellKind::Xor2.eval(&[true, false]));
        assert!(CellKind::Mux2.eval(&[true, false, true]));
        assert!(!CellKind::Mux2.eval(&[false, false, true]));
    }

    #[test]
    fn output_probability_sanity() {
        let p = CellKind::And(2).output_probability(&[0.5, 0.5]);
        assert!((p - 0.25).abs() < 1e-12);
        let p = CellKind::Xor2.output_probability(&[0.5, 0.5]);
        assert!((p - 0.5).abs() < 1e-12);
        let p = CellKind::Inv.output_probability(&[0.2]);
        assert!((p - 0.8).abs() < 1e-12);
    }

    #[test]
    fn probability_matches_exhaustive_eval() {
        // For uniform inputs, output probability must equal the fraction of
        // input combinations that evaluate true.
        for kind in [
            CellKind::And(3),
            CellKind::Or(2),
            CellKind::Nand(4),
            CellKind::Nor(2),
            CellKind::Xnor2,
            CellKind::Mux2,
        ] {
            let n = kind.arity();
            let mut ones = 0;
            for m in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                if kind.eval(&inputs) {
                    ones += 1;
                }
            }
            let expect = f64::from(ones) / f64::from(1u32 << n);
            let probs = vec![0.5; n];
            assert!(
                (kind.output_probability(&probs) - expect).abs() < 1e-12,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn generic_library_monotone_area() {
        let lib = CellLibrary::generic();
        assert!(lib.cell(CellKind::Nand(4)).area > lib.cell(CellKind::Nand(2)).area);
        assert!(lib.dff_area() > lib.cell(CellKind::Inv).area);
    }
}
