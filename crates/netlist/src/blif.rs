//! A mapped-BLIF dialect: emit and parse.
//!
//! The dialect is the `.gate` / `.latch` subset that SIS writes after
//! technology mapping:
//!
//! ```text
//! .model counter
//! .inputs a
//! .outputs y
//! .gate inv a=q0 O=n1
//! .latch n1 q0 0
//! .end
//! ```

use crate::{CellKind, Netlist, NetlistBuilder, NetlistError};
use std::collections::HashMap;
use std::fmt::Write as _;

const PIN_NAMES: [&str; 4] = ["a", "b", "c", "d"];

/// Serializes a netlist to the mapped-BLIF dialect.
pub fn emit(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", sanitize(netlist.name()));
    let _ = write!(out, ".inputs");
    for &i in netlist.inputs() {
        let _ = write!(out, " {}", sanitize(netlist.net_name(i)));
    }
    let _ = writeln!(out);
    let _ = write!(out, ".outputs");
    for (name, _) in netlist.outputs() {
        let _ = write!(out, " {}", sanitize(name));
    }
    let _ = writeln!(out);
    // Output aliases: BLIF names outputs after nets, so emit buffers when an
    // output name differs from its driving net.
    for (name, net) in netlist.outputs() {
        if sanitize(name) != sanitize(netlist.net_name(*net)) {
            let _ = writeln!(
                out,
                ".gate buf a={} O={}",
                sanitize(netlist.net_name(*net)),
                sanitize(name)
            );
        }
    }
    for g in netlist.gates() {
        let _ = write!(out, ".gate {}", g.kind.name());
        for (pin, net) in g.inputs.iter().enumerate() {
            let _ = write!(out, " {}={}", PIN_NAMES[pin], sanitize(netlist.net_name(*net)));
        }
        let _ = writeln!(out, " O={}", sanitize(netlist.net_name(g.output)));
    }
    for ff in netlist.flip_flops() {
        let _ = writeln!(
            out,
            ".latch {} {} {}",
            sanitize(netlist.net_name(ff.d)),
            sanitize(netlist.net_name(ff.q)),
            u8::from(ff.init)
        );
    }
    let _ = writeln!(out, ".end");
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

fn kind_from_name(name: &str) -> Option<CellKind> {
    let kind = match name {
        "zero" => CellKind::Const0,
        "one" => CellKind::Const1,
        "buf" => CellKind::Buf,
        "inv" => CellKind::Inv,
        "xor2" => CellKind::Xor2,
        "xnor2" => CellKind::Xnor2,
        "mux2" => CellKind::Mux2,
        _ => {
            let (base, n) = name.split_at(name.len().saturating_sub(1));
            let n: u8 = n.parse().ok()?;
            match base {
                "and" => CellKind::And(n),
                "or" => CellKind::Or(n),
                "nand" => CellKind::Nand(n),
                "nor" => CellKind::Nor(n),
                _ => return None,
            }
        }
    };
    Some(kind)
}

/// Parses the mapped-BLIF dialect emitted by [`emit`].
///
/// # Errors
///
/// Returns [`NetlistError::ParseBlif`] on malformed input, or the graph
/// validation errors of [`NetlistBuilder::finish`].
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    let mut builder: Option<NetlistBuilder> = None;
    let mut nets: HashMap<String, crate::NetId> = HashMap::new();
    let mut pending_outputs: Vec<String> = Vec::new();
    let err = |line: usize, message: &str| NetlistError::ParseBlif {
        line,
        message: message.to_string(),
    };
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        let head = toks.next().unwrap();
        match head {
            ".model" => {
                let name = toks.next().ok_or_else(|| err(lineno, "missing model name"))?;
                builder = Some(NetlistBuilder::new(name));
            }
            ".inputs" => {
                let b = builder.as_mut().ok_or_else(|| err(lineno, ".inputs before .model"))?;
                for t in toks {
                    let id = b.input(t);
                    nets.insert(t.to_string(), id);
                }
            }
            ".outputs" => {
                if builder.is_none() {
                    return Err(err(lineno, ".outputs before .model"));
                }
                pending_outputs.extend(toks.map(str::to_string));
            }
            ".gate" => {
                let b = builder.as_mut().ok_or_else(|| err(lineno, ".gate before .model"))?;
                let cell = toks.next().ok_or_else(|| err(lineno, "missing cell name"))?;
                let kind = kind_from_name(cell)
                    .ok_or_else(|| err(lineno, &format!("unknown cell {cell:?}")))?;
                let mut inputs = vec![None; kind.arity()];
                let mut output = None;
                for t in toks {
                    let (pin, net) = t
                        .split_once('=')
                        .ok_or_else(|| err(lineno, "pin binding must be pin=net"))?;
                    let id = *nets
                        .entry(net.to_string())
                        .or_insert_with(|| b.net(net));
                    if pin == "O" {
                        output = Some(id);
                    } else {
                        let idx = PIN_NAMES
                            .iter()
                            .position(|&p| p == pin)
                            .ok_or_else(|| err(lineno, &format!("unknown pin {pin:?}")))?;
                        if idx >= kind.arity() {
                            return Err(err(lineno, "pin beyond cell arity"));
                        }
                        inputs[idx] = Some(id);
                    }
                }
                let output = output.ok_or_else(|| err(lineno, "missing output pin"))?;
                let inputs: Option<Vec<_>> = inputs.into_iter().collect();
                let inputs = inputs.ok_or_else(|| err(lineno, "missing input pin"))?;
                b.gate_onto(kind, &inputs, output);
            }
            ".latch" => {
                let b = builder.as_mut().ok_or_else(|| err(lineno, ".latch before .model"))?;
                let d = toks.next().ok_or_else(|| err(lineno, "missing latch input"))?;
                let q = toks.next().ok_or_else(|| err(lineno, "missing latch output"))?;
                let init = toks.next().unwrap_or("0") == "1";
                let d = *nets.entry(d.to_string()).or_insert_with(|| b.net(d));
                let q = *nets.entry(q.to_string()).or_insert_with(|| b.net(q));
                b.flip_flop_onto(d, q, init);
            }
            ".end" => break,
            _ => return Err(err(lineno, &format!("unsupported construct {head:?}"))),
        }
    }
    let mut b = builder.ok_or_else(|| err(0, "missing .model"))?;
    for name in pending_outputs {
        let id = *nets.entry(name.clone()).or_insert_with(|| b.net(&name));
        b.output(name, id);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellLibrary, NetlistBuilder};
    use hwm_logic::Bits;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("sample");
        let a = b.input("a");
        let c = b.input("b");
        let q0 = b.net("q0");
        let n1 = b.gate(CellKind::Nand(2), &[a, q0]);
        let n2 = b.gate(CellKind::Xor2, &[n1, c]);
        b.flip_flop_onto(n2, q0, true);
        b.output("y", n2);
        b.finish().unwrap()
    }

    #[test]
    fn emit_contains_sections() {
        let text = emit(&sample());
        assert!(text.contains(".model sample"));
        assert!(text.contains(".inputs a b"));
        assert!(text.contains(".latch"));
        assert!(text.contains(".gate nand2"));
        assert!(text.ends_with(".end\n"));
    }

    #[test]
    fn roundtrip_preserves_behavior() {
        let nl = sample();
        let back = parse(&emit(&nl)).unwrap();
        assert_eq!(back.flip_flops().len(), nl.flip_flops().len());
        assert_eq!(back.inputs().len(), nl.inputs().len());
        // Behavioral check on all input/state combinations. The round-trip
        // inserts an output buffer, so compare I/O values, not structure.
        for pi in 0..4u64 {
            for st in 0..2u64 {
                let (po1, ns1) = nl.eval(&Bits::from_u64(pi, 2), &Bits::from_u64(st, 1));
                let (po2, ns2) = back.eval(&Bits::from_u64(pi, 2), &Bits::from_u64(st, 1));
                assert_eq!(po1, po2);
                assert_eq!(ns1, ns2);
            }
        }
    }

    #[test]
    fn parse_rejects_unknown_cell() {
        let text = ".model m\n.inputs a\n.outputs y\n.gate frob a=a O=y\n.end\n";
        assert!(matches!(parse(text), Err(NetlistError::ParseBlif { .. })));
    }

    #[test]
    fn parse_rejects_missing_model() {
        assert!(parse(".inputs a\n").is_err());
    }

    #[test]
    fn roundtrip_stats_close() {
        let lib = CellLibrary::generic();
        let nl = sample();
        let back = parse(&emit(&nl)).unwrap();
        let s1 = nl.stats(&lib);
        let s2 = back.stats(&lib);
        // One buffer of slack allowed for the output alias.
        assert!((s2.area - s1.area).abs() <= lib.cell(CellKind::Buf).area + 1e-9);
    }
}
