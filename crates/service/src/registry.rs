//! The persistent IC registry: per-die state plus an append-only journal.
//!
//! Every state change appends exactly one JSON line to the journal before
//! the in-memory tables change, so the journal is the registry: a crashed
//! or restarted server rebuilds its full state by replaying the file
//! (last-write-wins is unnecessary — events are never rewritten). Events
//! are a pure function of the accepted request sequence, so a fixed
//! request schedule produces byte-identical journals on every run — the
//! harness's determinism contract extends to the serving layer.
//!
//! Journal schema (one compact JSON object per line, `\n`-terminated):
//!
//! ```text
//! {"event":"register","seq":1,"ic":"c0-ic0","client":"c0","readout":"0101...","group":2}
//! {"event":"duplicate","seq":2,"ic":"c1-ic9","client":"c1","prior":"c0-ic0"}
//! {"event":"unlock","seq":3,"ic":"c0-ic0","client":"c0","key_len":9}
//! {"event":"disable","seq":4,"ic":"c0-ic0","client":"c0"}
//! ```
//!
//! `seq` increases by one per event. Keys themselves are **not**
//! journaled (only their length): the designer's activation ledger is the
//! authoritative key store, and keeping key material out of the registry
//! file means a leaked journal discloses no unlock secrets.
//!
//! The `duplicate` event is the passive-metering detector (DAC 2001): two
//! registrations with the same power-up readout mean one of the dies is a
//! clone (or the foundry double-reported) — the collision itself is the
//! evidence, so the rejected attempt is journaled rather than dropped.
//!
//! # Crash recovery
//!
//! [`Registry::open`] recovers from snapshot + journal tail:
//! [`crate::snapshot::RegistrySnapshot`] (schema v1, written atomically by
//! [`Registry::compact`]) restores everything through `snapshot.seq`, then
//! only tail lines with a later `seq` are replayed (earlier ones — left
//! behind when a crash lands between the snapshot rename and the journal
//! truncation — are recognized and skipped). A **torn tail** — a final
//! line without the terminating `\n` a clean append always writes — is a
//! crash artifact: it is logged, discarded, and truncated away so the next
//! append starts on a fresh line. Anything else that fails to parse or
//! apply is genuine corruption and still hard-fails with its line number.
//! [`Registry::replay`] (the strict full-text API) keeps rejecting torn
//! tails too: callers handing it raw text want the lossless check.
//!
//! The registry also maintains a **rolling FNV-1a digest** over every
//! journal byte ever appended. The digest is carried in the snapshot
//! across compactions, so "journal digest" remains comparable to the
//! digest of the full uncompacted journal — the fingerprint the
//! determinism and crash-simulation tests compare against a fault-free
//! oracle.

use crate::fault::FaultyStore;
use crate::snapshot::{snapshot_path, RegistrySnapshot};
use crate::storage::{FileStore, FlushPolicy, JournalStore};
use crate::wire::WireError;
use hwm_jsonio::Json;
use hwm_metrics::{MetricClass, MetricsRegistry, LATENCY_BUCKETS_NS};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Lifecycle state of one registered IC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IcState {
    /// Fabrication reported; key not yet issued.
    Registered,
    /// Key issued; the die is active in the field.
    Unlocked,
    /// Remotely disabled; no further service.
    Disabled,
}

impl IcState {
    /// Wire/journal name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            IcState::Registered => "registered",
            IcState::Unlocked => "unlocked",
            IcState::Disabled => "disabled",
        }
    }

    /// Parses a wire/journal/snapshot state name.
    pub fn parse(s: &str) -> Option<IcState> {
        match s {
            "registered" => Some(IcState::Registered),
            "unlocked" => Some(IcState::Unlocked),
            "disabled" => Some(IcState::Disabled),
            _ => None,
        }
    }
}

impl fmt::Display for IcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One registered die.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcRecord {
    /// Foundry-assigned label.
    pub ic: String,
    /// Client that registered the die.
    pub client: String,
    /// Power-up readout bit string (the die's identity).
    pub readout: String,
    /// SFFSM group reported at registration.
    pub group: u8,
    /// Current lifecycle state.
    pub state: IcState,
    /// Journal sequence number of the registration event.
    pub seq: u64,
}

/// One rejected duplicate-readout registration — the passive-metering
/// clone evidence, preserved across restarts and compactions (the
/// snapshot carries it; a count alone would lose the *which dies*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloneEvidence {
    /// Journal sequence number of the `duplicate` event.
    pub seq: u64,
    /// The IC label the rejected registration claimed.
    pub ic: String,
    /// Client that attempted the registration.
    pub client: String,
    /// The IC that registered this readout first.
    pub prior: String,
}

/// Why a registry mutation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The readout is already registered to `prior` — clone evidence.
    DuplicateReadout {
        /// The IC that registered this readout first.
        prior: String,
    },
    /// The IC label is already taken.
    DuplicateIc,
    /// No IC with the given label exists.
    UnknownIc,
    /// No IC with the given readout exists.
    UnknownReadout,
    /// The IC is not in a state that allows the mutation.
    WrongState(IcState),
    /// The journal could not be appended; the mutation did not happen.
    Journal(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateReadout { prior } => {
                write!(f, "readout already registered to {prior:?}")
            }
            RegistryError::DuplicateIc => write!(f, "IC label already registered"),
            RegistryError::UnknownIc => write!(f, "no such IC"),
            RegistryError::UnknownReadout => write!(f, "no registered IC has this readout"),
            RegistryError::WrongState(s) => write!(f, "IC is {s}"),
            RegistryError::Journal(e) => write!(f, "journal append failed: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A recovery failure pinned to the exact file (and, when attributable,
/// the line) it came from. Multi-shard deployments recover many journals
/// at once; an error that names only a line number cannot say *which*
/// replica is corrupt, so [`Registry::open_with`] routes every
/// corruption diagnosis through this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverError {
    /// What failed to recover: `"journal"` or `"snapshot"`.
    pub what: &'static str,
    /// The file that failed to recover.
    pub path: PathBuf,
    /// 1-based line number within the file, when line-attributable.
    pub line: Option<usize>,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt {} {}", self.what, self.path.display())?;
        if let Some(line) = self.line {
            write!(f, ": line {line}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for RecoverError {}

impl From<RecoverError> for std::io::Error {
    fn from(e: RecoverError) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// A journal line that failed to parse or apply (internal: callers see it
/// as a [`WireError`] or a path-attributed [`RecoverError`]).
struct LineError {
    line: usize,
    detail: String,
}

impl LineError {
    fn to_wire(&self) -> WireError {
        WireError::new(format!("journal line {}: {}", self.line, self.detail))
    }
}

/// Where journal lines go.
enum Journal {
    /// In-memory buffer (tests, benches, ephemeral servers).
    Memory(Vec<u8>),
    /// A [`JournalStore`] (file, possibly fault-wrapped) plus the
    /// durability policy applied after each append.
    Store {
        store: Box<dyn JournalStore>,
        policy: FlushPolicy,
    },
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Journal::Memory(buf) => f.debug_tuple("Memory").field(&buf.len()).finish(),
            Journal::Store { policy, .. } => {
                f.debug_struct("Store").field("policy", policy).finish_non_exhaustive()
            }
        }
    }
}

/// A discarded torn journal tail (crash artifact found at open time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// 1-based line number of the torn line.
    pub line: usize,
    /// Bytes discarded.
    pub bytes: usize,
}

/// Recovery/durability knobs for [`Registry::open_with`].
#[derive(Debug, Default)]
pub struct RecoverOptions {
    /// Durability of each append (see [`FlushPolicy`]).
    pub flush: FlushPolicy,
    /// Auto-compact once this many events accumulate past the last
    /// snapshot (`0` = never; call [`Registry::compact`] manually).
    pub compact_every: u64,
    /// Fault-injection channel wrapped around the file store (crash
    /// simulation only).
    pub injector: Option<crate::fault::FaultInjector>,
}

/// Registry counts for status reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryCounts {
    /// ICs ever registered.
    pub registered: u64,
    /// ICs currently unlocked.
    pub unlocked: u64,
    /// ICs disabled.
    pub disabled: u64,
    /// Duplicate-readout attempts rejected.
    pub duplicates: u64,
}

/// The IC registry: in-memory tables fronted by the append-only journal.
#[derive(Debug)]
pub struct Registry {
    records: Vec<IcRecord>,
    by_ic: HashMap<String, usize>,
    by_readout: HashMap<String, usize>,
    journal: Journal,
    seq: u64,
    duplicates: u64,
    /// Duplicate-readout evidence in journal order (snapshot-preserved).
    clones: Vec<CloneEvidence>,
    /// Rolling FNV-1a digest of every journal byte ever appended.
    digest: u64,
    /// Journal file path (file-backed registries; compaction needs it).
    path: Option<PathBuf>,
    /// Events covered by the on-disk snapshot (0 = none).
    snapshot_seq: u64,
    /// Auto-compaction threshold (0 = never).
    compact_every: u64,
    /// Live instrumentation sink, when the owning server attached one.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Events restored from the snapshot at open time.
    snapshot_events: u64,
    /// Tail events rebuilt from the journal at open time.
    replayed_events: u64,
    /// Wall time the recovery took (ns; scheduling-dependent).
    replay_ns: u64,
    /// Torn tail discarded at open time, if any.
    torn_tail: Option<TornTail>,
    /// When true, every appended line is also retained (until drained)
    /// for journal-shipping replication.
    rep_capture: bool,
    /// Appended lines not yet drained by the replication layer.
    rep_tail: Vec<String>,
    /// Events appended since the last flush under
    /// [`FlushPolicy::GroupCommit`] (0 under every other policy).
    gc_pending: u32,
    /// Group-commit barrier flushes performed so far.
    gc_flushes: u64,
    /// Reusable scratch for rendering journal lines (one allocation for
    /// the life of the registry instead of one per event).
    line_buf: String,
}

impl Registry {
    /// An ephemeral registry journaling to memory.
    pub fn in_memory() -> Registry {
        Registry {
            records: Vec::new(),
            by_ic: HashMap::new(),
            by_readout: HashMap::new(),
            journal: Journal::Memory(Vec::new()),
            seq: 0,
            duplicates: 0,
            clones: Vec::new(),
            digest: DIGEST_BASIS,
            path: None,
            snapshot_seq: 0,
            compact_every: 0,
            metrics: None,
            snapshot_events: 0,
            replayed_events: 0,
            replay_ns: 0,
            torn_tail: None,
            rep_capture: false,
            rep_tail: Vec::new(),
            gc_pending: 0,
            gc_flushes: 0,
            line_buf: String::new(),
        }
    }

    /// Rebuilds a registry from a compaction snapshot alone (no journal
    /// tail) — the catch-up path a lagging replication follower takes
    /// when the leader's retained journal no longer reaches back far
    /// enough. The registry journals to memory from then on, with `seq`
    /// and the rolling digest continuing from the snapshot.
    ///
    /// # Errors
    ///
    /// `InvalidData` for an internally inconsistent snapshot (repeated
    /// ICs or readouts).
    pub fn from_snapshot(snap: RegistrySnapshot) -> std::io::Result<Registry> {
        let mut r = Registry::in_memory();
        let seq = snap.seq;
        r.restore_snapshot(snap)?;
        r.snapshot_events = seq;
        Ok(r)
    }

    /// Arms replication capture: every line appended from now on is also
    /// retained until [`Registry::drain_replication`] collects it. The
    /// shard leader's side of journal shipping.
    pub fn enable_replication(&mut self) {
        self.rep_capture = true;
    }

    /// Takes the journal lines appended since the last drain (without
    /// trailing newlines) — what the leader ships to its followers.
    pub fn drain_replication(&mut self) -> Vec<String> {
        std::mem::take(&mut self.rep_tail)
    }

    /// Applies one replicated journal line (the follower's side of
    /// journal shipping). The line re-executes through the normal
    /// mutation path, so the follower's own journal, rolling digest and
    /// `seq` advance exactly as the leader's did — replicas stay
    /// byte-identical, which is what makes failover promotion safe.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for lines that fail to parse, arrive out
    /// of sequence, or do not re-apply — a diverged replica must refuse
    /// the entry rather than guess.
    pub fn apply_replicated(&mut self, line: &str) -> Result<(), WireError> {
        let lineno = (self.seq + 1) as usize;
        self.apply_journal_line(line, lineno, 0)
            .map_err(|e| e.to_wire())
    }

    /// Attaches a live metrics sink: journal appends feed a
    /// `journal_append_ns` timing histogram and `journal_events_total`
    /// event counters, and the recovery that happened at open time is
    /// published as `journal_replayed_events` / `journal_snapshot_events`
    /// / `journal_torn_tail_bytes` / `journal_replay_ns` gauges.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        metrics.set_gauge(
            "journal_replayed_events",
            &[],
            MetricClass::Det,
            self.replayed_events,
        );
        metrics.set_gauge(
            "journal_snapshot_events",
            &[],
            MetricClass::Det,
            self.snapshot_events,
        );
        metrics.set_gauge(
            "journal_torn_tail_bytes",
            &[],
            MetricClass::Det,
            self.torn_tail.map_or(0, |t| t.bytes as u64),
        );
        metrics.set_gauge("journal_replay_ns", &[], MetricClass::Timing, self.replay_ns);
        self.metrics = Some(metrics);
    }

    /// Opens (or creates) a journal-backed registry at `path` with
    /// default recovery options — see [`Registry::open_with`].
    ///
    /// # Errors
    ///
    /// See [`Registry::open_with`].
    pub fn open(path: &Path) -> std::io::Result<Registry> {
        Self::open_with(path, RecoverOptions::default())
    }

    /// Opens (or creates) a journal-backed registry at `path`: the
    /// `snapshot.json` next to the journal (if any) restores state
    /// through its `seq`, the journal tail replays the rest, a torn
    /// final line is logged/discarded/truncated, and the file is
    /// reopened for appending — restart recovery is exactly
    /// "snapshot + tail, then continue".
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files and a
    /// [`WireError`]-derived error message for corrupt snapshot or
    /// journal content (mapped onto `io::ErrorKind::InvalidData` so
    /// callers can distinguish corruption from filesystem trouble).
    pub fn open_with(path: &Path, opts: RecoverOptions) -> std::io::Result<Registry> {
        let started = Instant::now();
        let mut registry = Registry::in_memory();
        let mut snapshot_seq = 0;
        if let Some(snap) = RegistrySnapshot::load(&snapshot_path(path))? {
            snapshot_seq = snap.seq;
            registry.restore_snapshot(snap).map_err(|e| RecoverError {
                what: "snapshot",
                path: snapshot_path(path),
                line: None,
                detail: e.to_string(),
            })?;
        }
        let mut torn = None;
        match std::fs::read_to_string(path) {
            Ok(text) => {
                torn = registry
                    .apply_journal_text(&text, snapshot_seq, true)
                    .map_err(|e| RecoverError {
                        what: "journal",
                        path: path.to_path_buf(),
                        line: Some(e.line),
                        detail: e.detail,
                    })?;
                if let Some(t) = &torn {
                    eprintln!(
                        "registry: journal {}: discarding torn tail at line {} ({} bytes) — crash artifact",
                        path.display(),
                        t.line,
                        t.bytes
                    );
                    // Truncate the torn bytes away so the next append
                    // starts on a fresh line.
                    OpenOptions::new()
                        .write(true)
                        .open(path)?
                        .set_len((text.len() - t.bytes) as u64)?;
                    hwm_trace::counter("journal_torn_tails", 1);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        registry.snapshot_events = snapshot_seq;
        registry.replayed_events = registry.seq - snapshot_seq;
        registry.replay_ns = started.elapsed().as_nanos() as u64;
        registry.torn_tail = torn;
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let store: Box<dyn JournalStore> = match opts.injector {
            Some(injector) => Box::new(FaultyStore::new(Box::new(FileStore::new(file)), injector)),
            None => Box::new(FileStore::new(file)),
        };
        registry.journal = Journal::Store {
            store,
            policy: opts.flush,
        };
        registry.path = Some(path.to_path_buf());
        registry.snapshot_seq = snapshot_seq;
        registry.compact_every = opts.compact_every;
        Ok(registry)
    }

    /// Rebuilds a registry from journal text (in-memory journaling from
    /// then on; [`Registry::open`] swaps in the file handle).
    ///
    /// This is the **strict** API: every line must parse and apply, and a
    /// torn final line is an error (with its line number) — callers that
    /// want crash tolerance go through [`Registry::open`], which
    /// distinguishes the torn tail and recovers.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed lines or impossible event
    /// sequences (e.g. an unlock of an unregistered IC).
    pub fn replay(journal_text: &str) -> Result<Registry, WireError> {
        let mut registry = Registry::in_memory();
        registry
            .apply_journal_text(journal_text, 0, false)
            .map_err(|e| e.to_wire())?;
        Ok(registry)
    }

    /// Restores snapshot state into a fresh registry.
    fn restore_snapshot(&mut self, snap: RegistrySnapshot) -> std::io::Result<()> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        for (index, r) in snap.records.iter().enumerate() {
            if self.by_ic.insert(r.ic.clone(), index).is_some() {
                return Err(invalid(format!("snapshot repeats IC {:?}", r.ic)));
            }
            if self.by_readout.insert(r.readout.clone(), index).is_some() {
                return Err(invalid(format!("snapshot repeats readout of IC {:?}", r.ic)));
            }
        }
        self.duplicates = snap.clones.len() as u64;
        self.records = snap.records;
        self.clones = snap.clones;
        self.seq = snap.seq;
        self.digest = snap.digest;
        Ok(())
    }

    /// Applies journal text on top of the current state. Lines with
    /// `seq <= skip_through` were already folded into the snapshot and
    /// are skipped (they must still be JSON with an `event` and `seq` —
    /// anything less is corruption). With `tolerate_tail`, an
    /// unterminated final line is returned as a [`TornTail`] instead of
    /// applied: a clean append always writes the trailing `\n`, so its
    /// absence identifies a torn write regardless of how plausible the
    /// prefix looks.
    fn apply_journal_text(
        &mut self,
        text: &str,
        skip_through: u64,
        tolerate_tail: bool,
    ) -> Result<Option<TornTail>, LineError> {
        let mut lineno = 0usize;
        for chunk in text.split_inclusive('\n') {
            lineno += 1;
            if tolerate_tail && !chunk.ends_with('\n') {
                return Ok(Some(TornTail {
                    line: lineno,
                    bytes: chunk.len(),
                }));
            }
            self.apply_journal_line(chunk.trim_end_matches('\n'), lineno, skip_through)?;
        }
        Ok(None)
    }

    /// Parses and applies one journal line.
    fn apply_journal_line(
        &mut self,
        line: &str,
        lineno: usize,
        skip_through: u64,
    ) -> Result<(), LineError> {
        let fail = |what: &str| LineError {
            line: lineno,
            detail: what.to_string(),
        };
        let j = Json::parse(line).map_err(|e| fail(&format!("not JSON: {e}")))?;
        let event = j
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing event"))?
            .to_string();
        let seq = j
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing seq"))?;
        if seq <= skip_through {
            // Already folded into the snapshot: a crash between the
            // snapshot rename and the journal truncation leaves these
            // behind. Recognize and skip.
            return Ok(());
        }
        if seq != self.seq + 1 {
            return Err(fail(&format!(
                "seq {seq} out of order (expected {})",
                self.seq + 1
            )));
        }
        let str_field = |name: &str| {
            j.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| fail(&format!("missing {name}")))
        };
        let apply = match event.as_str() {
            "register" => self.register(
                &str_field("client")?,
                &str_field("ic")?,
                &str_field("readout")?,
                j.get("group")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail("missing group"))? as u8,
            ),
            "duplicate" => {
                // Replaying the rejection re-runs the detector; it must
                // reject again, which re-counts the duplicate.
                let client = str_field("client")?;
                let ic = str_field("ic")?;
                let prior = str_field("prior")?;
                let readout = self
                    .by_ic
                    .get(&prior)
                    .map(|&i| self.records[i].readout.clone())
                    .ok_or_else(|| fail("duplicate names unknown prior IC"))?;
                match self.register(&client, &ic, &readout, 0) {
                    Err(RegistryError::DuplicateReadout { .. }) => Ok(()),
                    _ => return Err(fail("duplicate event did not re-collide")),
                }
            }
            "unlock" => self.mark_unlocked(
                &str_field("ic")?,
                j.get("key_len")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| fail("missing key_len"))?,
                &str_field("client")?,
            ),
            "disable" => self.mark_disabled(&str_field("ic")?, &str_field("client")?),
            other => return Err(fail(&format!("unknown event {other:?}"))),
        };
        apply.map_err(|e| fail(&format!("replay rejected: {e}")))
    }

    fn append(&mut self, event: &'static str, line: Json) -> Result<(), RegistryError> {
        use std::fmt::Write as _;
        // Render into the reusable scratch (taken and put back so the
        // journal borrow below stays disjoint).
        let mut text = std::mem::take(&mut self.line_buf);
        text.clear();
        let _ = write!(text, "{line}");
        text.push('\n');
        let started = Instant::now();
        let mut gc_flushed = false;
        let appended = match &mut self.journal {
            Journal::Memory(buf) => {
                buf.extend_from_slice(text.as_bytes());
                Ok(())
            }
            Journal::Store { store, policy } => {
                let mut result = store.append(text.as_bytes());
                if result.is_ok() {
                    match *policy {
                        FlushPolicy::Buffered => {}
                        FlushPolicy::PerEvent => result = store.flush(),
                        FlushPolicy::Sync => result = store.sync(),
                        FlushPolicy::GroupCommit { max_batch } => {
                            // Count-driven barrier: one flush covers the
                            // whole batch. Never wall-time-driven, so the
                            // on-disk byte stream matches per-event mode.
                            self.gc_pending += 1;
                            if self.gc_pending >= max_batch.max(1) {
                                result = store.commit();
                                self.gc_pending = 0;
                                self.gc_flushes += 1;
                                gc_flushed = true;
                            }
                        }
                    }
                }
                result.map_err(|e| RegistryError::Journal(e.to_string()))
            }
        };
        if appended.is_ok() {
            self.digest = digest_update(self.digest, text.as_bytes());
            if self.rep_capture {
                self.rep_tail.push(text.trim_end_matches('\n').to_string());
            }
        }
        if let Some(m) = &self.metrics {
            m.observe(
                "journal_append_ns",
                &[],
                MetricClass::Timing,
                LATENCY_BUCKETS_NS,
                started.elapsed().as_nanos() as u64,
            );
            if appended.is_ok() {
                m.inc("journal_events_total", &[("event", event)], 1);
                // Timing class, not Det: the values depend on the
                // durability configuration, not the request sequence, so
                // they must stay out of the cross-policy determinism
                // comparison.
                if gc_flushed || self.gc_pending > 0 {
                    m.set_gauge(
                        "journal_group_commit_flushes",
                        &[],
                        MetricClass::Timing,
                        self.gc_flushes,
                    );
                    m.set_gauge(
                        "journal_group_commit_pending",
                        &[],
                        MetricClass::Timing,
                        self.gc_pending as u64,
                    );
                }
            }
        }
        self.line_buf = text;
        appended
    }

    /// Commit barrier: makes every appended journal event durable. Under
    /// [`FlushPolicy::GroupCommit`] this closes the open batch (a no-op
    /// when the batch is empty); under [`FlushPolicy::Buffered`] and
    /// [`FlushPolicy::PerEvent`] it is the only fsync the policy ever
    /// issues; under [`FlushPolicy::Sync`] every event is already
    /// durable and nothing is owed. The owning server drives this from
    /// the logical tick clock; compaction and shutdown call it
    /// unconditionally. A no-op for in-memory journals.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Journal`] when the underlying store fails.
    pub fn commit(&mut self) -> Result<(), RegistryError> {
        if self.gc_pending == 0 {
            match &mut self.journal {
                Journal::Store {
                    store,
                    policy: FlushPolicy::Buffered | FlushPolicy::PerEvent,
                } => {
                    return store
                        .commit()
                        .map_err(|e| RegistryError::Journal(e.to_string()));
                }
                _ => return Ok(()),
            }
        }
        if let Journal::Store { store, .. } = &mut self.journal {
            store
                .commit()
                .map_err(|e| RegistryError::Journal(e.to_string()))?;
            self.gc_pending = 0;
            self.gc_flushes += 1;
            if let Some(m) = &self.metrics {
                m.set_gauge(
                    "journal_group_commit_flushes",
                    &[],
                    MetricClass::Timing,
                    self.gc_flushes,
                );
                m.set_gauge("journal_group_commit_pending", &[], MetricClass::Timing, 0);
            }
        }
        Ok(())
    }

    /// Journal events batched under [`FlushPolicy::GroupCommit`] but not
    /// yet covered by a flush barrier.
    pub fn pending_commits(&self) -> u32 {
        self.gc_pending
    }

    /// Registers a fabricated IC. The same readout registered twice is the
    /// passive-metering clone signal: the attempt is journaled as a
    /// `duplicate` event and rejected.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateReadout`] / [`RegistryError::DuplicateIc`]
    /// on collision, [`RegistryError::Journal`] when persistence failed.
    pub fn register(
        &mut self,
        client: &str,
        ic: &str,
        readout: &str,
        group: u8,
    ) -> Result<(), RegistryError> {
        if self.by_ic.contains_key(ic) {
            return Err(RegistryError::DuplicateIc);
        }
        if let Some(&i) = self.by_readout.get(readout) {
            let prior = self.records[i].ic.clone();
            let seq = self.seq + 1;
            self.append("duplicate", Json::obj(vec![
                ("event", Json::Str("duplicate".into())),
                ("seq", Json::U64(seq)),
                ("ic", Json::Str(ic.to_string())),
                ("client", Json::Str(client.to_string())),
                ("prior", Json::Str(prior.clone())),
            ]))?;
            self.seq = seq;
            self.duplicates += 1;
            self.clones.push(CloneEvidence {
                seq,
                ic: ic.to_string(),
                client: client.to_string(),
                prior: prior.clone(),
            });
            hwm_trace::counter("registry_duplicates", 1);
            self.maybe_compact();
            return Err(RegistryError::DuplicateReadout { prior });
        }
        let seq = self.seq + 1;
        self.append("register", Json::obj(vec![
            ("event", Json::Str("register".into())),
            ("seq", Json::U64(seq)),
            ("ic", Json::Str(ic.to_string())),
            ("client", Json::Str(client.to_string())),
            ("readout", Json::Str(readout.to_string())),
            ("group", Json::U64(group as u64)),
        ]))?;
        self.seq = seq;
        let index = self.records.len();
        self.records.push(IcRecord {
            ic: ic.to_string(),
            client: client.to_string(),
            readout: readout.to_string(),
            group,
            state: IcState::Registered,
            seq,
        });
        self.by_ic.insert(ic.to_string(), index);
        self.by_readout.insert(readout.to_string(), index);
        hwm_trace::counter("registry_registrations", 1);
        self.maybe_compact();
        Ok(())
    }

    /// Marks a registered IC unlocked (key issued; only the key's length is
    /// journaled — see the module docs).
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownIc`] or [`RegistryError::WrongState`] when
    /// the IC is not awaiting a key.
    pub fn mark_unlocked(
        &mut self,
        ic: &str,
        key_len: usize,
        client: &str,
    ) -> Result<(), RegistryError> {
        let &index = self.by_ic.get(ic).ok_or(RegistryError::UnknownIc)?;
        match self.records[index].state {
            IcState::Registered => {}
            other => return Err(RegistryError::WrongState(other)),
        }
        let seq = self.seq + 1;
        self.append("unlock", Json::obj(vec![
            ("event", Json::Str("unlock".into())),
            ("seq", Json::U64(seq)),
            ("ic", Json::Str(ic.to_string())),
            ("client", Json::Str(client.to_string())),
            ("key_len", Json::U64(key_len as u64)),
        ]))?;
        self.seq = seq;
        self.records[index].state = IcState::Unlocked;
        hwm_trace::counter("registry_unlocks", 1);
        self.maybe_compact();
        Ok(())
    }

    /// Marks an IC disabled (from any live state).
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownIc`] or [`RegistryError::WrongState`] when
    /// already disabled.
    pub fn mark_disabled(&mut self, ic: &str, client: &str) -> Result<(), RegistryError> {
        let &index = self.by_ic.get(ic).ok_or(RegistryError::UnknownIc)?;
        if self.records[index].state == IcState::Disabled {
            return Err(RegistryError::WrongState(IcState::Disabled));
        }
        let seq = self.seq + 1;
        self.append("disable", Json::obj(vec![
            ("event", Json::Str("disable".into())),
            ("seq", Json::U64(seq)),
            ("ic", Json::Str(ic.to_string())),
            ("client", Json::Str(client.to_string())),
        ]))?;
        self.seq = seq;
        self.records[index].state = IcState::Disabled;
        hwm_trace::counter("registry_disables", 1);
        self.maybe_compact();
        Ok(())
    }

    /// Writes an atomic snapshot of the current state and truncates the
    /// journal — recovery cost stops growing with history. Ordering is
    /// crash-safe: the snapshot lands (tmp + fsync + rename) before the
    /// journal is truncated (tmp + rename), and recovery skips tail
    /// lines the snapshot already covers, so a crash anywhere in between
    /// loses nothing.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an in-memory registry; otherwise the
    /// underlying I/O error, in which case the journal is left intact
    /// (recovery still works from the full file).
    pub fn compact(&mut self) -> std::io::Result<()> {
        let Some(path) = self.path.clone() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "in-memory registry has no journal file to compact",
            ));
        };
        // Push buffered appends out first so the on-disk journal is
        // complete if we crash mid-compaction. This also closes any open
        // group-commit batch.
        if let Journal::Store { store, .. } = &mut self.journal {
            store.flush()?;
        }
        self.gc_pending = 0;
        let snap = RegistrySnapshot {
            seq: self.seq,
            digest: self.digest,
            records: self.records.clone(),
            clones: self.clones.clone(),
        };
        snap.write_atomic(&snapshot_path(&path))?;
        // Truncate the journal with the same tmp + rename dance.
        let tmp = path.with_extension("jsonl.tmp");
        File::create(&tmp)?.sync_all()?;
        std::fs::rename(&tmp, &path)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        // The store's handle points at the renamed-away inode.
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if let Journal::Store { store, .. } = &mut self.journal {
            store.reopen(file)?;
        }
        self.snapshot_seq = self.seq;
        if let Some(m) = &self.metrics {
            m.inc("journal_compactions_total", &[], 1);
        }
        hwm_trace::counter("journal_compactions", 1);
        Ok(())
    }

    /// Sets the per-append durability policy (no-op for in-memory
    /// journals). The owning server applies its
    /// [`crate::server::ServerConfig`] knob through this.
    pub fn set_flush_policy(&mut self, policy: FlushPolicy) {
        // Close any open group-commit batch before the policy changes so
        // no event straddles two durability regimes.
        let _ = self.commit();
        if let Journal::Store { policy: p, .. } = &mut self.journal {
            *p = policy;
        }
    }

    /// Auto-compaction check, run after every successful mutation.
    fn maybe_compact(&mut self) {
        if self.compact_every == 0
            || self.path.is_none()
            || self.seq - self.snapshot_seq < self.compact_every
        {
            return;
        }
        if let Err(e) = self.compact() {
            // Failing to compact is not fatal: the journal is intact and
            // recovery simply replays more of it. Keep serving.
            eprintln!("registry: compaction failed (journal kept, will retry): {e}");
        }
    }

    /// Looks up a record by IC label.
    pub fn by_ic(&self, ic: &str) -> Option<&IcRecord> {
        self.by_ic.get(ic).map(|&i| &self.records[i])
    }

    /// Looks up a record by readout bit string.
    pub fn by_readout(&self, readout: &str) -> Option<&IcRecord> {
        self.by_readout.get(readout).map(|&i| &self.records[i])
    }

    /// Current counts.
    pub fn counts(&self) -> RegistryCounts {
        let mut c = RegistryCounts {
            registered: self.records.len() as u64,
            duplicates: self.duplicates,
            ..RegistryCounts::default()
        };
        for r in &self.records {
            match r.state {
                IcState::Registered => {}
                IcState::Unlocked => c.unlocked += 1,
                IcState::Disabled => c.disabled += 1,
            }
        }
        c
    }

    /// Journal events appended so far.
    pub fn journal_len(&self) -> u64 {
        self.seq
    }

    /// The journal bytes, when journaling to memory (`None` for a
    /// file-backed registry — read the file instead).
    pub fn journal_bytes(&self) -> Option<&[u8]> {
        match &self.journal {
            Journal::Memory(buf) => Some(buf),
            Journal::Store { .. } => None,
        }
    }

    /// All records, in registration order.
    pub fn records(&self) -> &[IcRecord] {
        &self.records
    }

    /// Duplicate-readout evidence in journal order — survives restarts
    /// and compactions.
    pub fn clones(&self) -> &[CloneEvidence] {
        &self.clones
    }

    /// Rolling FNV-1a digest of every journal byte ever appended,
    /// including history compacted into the snapshot. Equal to
    /// [`journal_digest`] of the full uncompacted journal.
    pub fn rolling_digest(&self) -> u64 {
        self.digest
    }

    /// Events covered by the on-disk snapshot at open time.
    pub fn snapshot_events(&self) -> u64 {
        self.snapshot_events
    }

    /// Tail events replayed from the journal at open time.
    pub fn replayed_events(&self) -> u64 {
        self.replayed_events
    }

    /// The torn tail discarded at open time, if the journal had one.
    pub fn torn_tail(&self) -> Option<TornTail> {
        self.torn_tail
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        // Best-effort: push buffered journal bytes to the OS so a clean
        // shutdown under FlushPolicy::Buffered or an open group-commit
        // batch loses nothing.
        if let Journal::Store { store, .. } = &mut self.journal {
            let _ = store.flush();
        }
    }
}

/// FNV-1a offset basis (the digest of an empty journal).
pub const DIGEST_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds more bytes into a rolling FNV-1a state.
pub fn digest_update(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// FNV-1a digest of journal bytes — a compact fingerprint for the
/// determinism checks ("byte-identical journal for every `--jobs`").
pub fn journal_digest(bytes: &[u8]) -> u64 {
    digest_update(DIGEST_BASIS, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::in_memory();
        r.register("c0", "ic-0", "0101", 1).unwrap();
        r.register("c0", "ic-1", "1110", 0).unwrap();
        r.mark_unlocked("ic-0", 9, "c0").unwrap();
        let err = r.register("c1", "ic-2", "0101", 1).unwrap_err();
        assert_eq!(
            err,
            RegistryError::DuplicateReadout {
                prior: "ic-0".into()
            }
        );
        r.mark_disabled("ic-0", "alice").unwrap();
        r
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hwm-registry-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lifecycle_and_counts() {
        let r = sample();
        assert_eq!(r.by_ic("ic-0").unwrap().state, IcState::Disabled);
        assert_eq!(r.by_ic("ic-1").unwrap().state, IcState::Registered);
        assert_eq!(r.by_readout("1110").unwrap().ic, "ic-1");
        let c = r.counts();
        assert_eq!((c.registered, c.unlocked, c.disabled, c.duplicates), (2, 0, 1, 1));
        assert_eq!(r.journal_len(), 5);
        assert_eq!(
            r.clones(),
            &[CloneEvidence {
                seq: 4,
                ic: "ic-2".into(),
                client: "c1".into(),
                prior: "ic-0".into(),
            }]
        );
    }

    #[test]
    fn wrong_state_transitions_are_refused() {
        let mut r = sample();
        assert!(matches!(
            r.mark_unlocked("ic-0", 3, "c0"),
            Err(RegistryError::WrongState(IcState::Disabled))
        ));
        assert!(matches!(
            r.mark_disabled("ic-0", "alice"),
            Err(RegistryError::WrongState(IcState::Disabled))
        ));
        assert!(matches!(
            r.mark_unlocked("nope", 3, "c0"),
            Err(RegistryError::UnknownIc)
        ));
    }

    #[test]
    fn replay_rebuilds_identical_state_and_journal() {
        let r = sample();
        let journal = String::from_utf8(r.journal_bytes().unwrap().to_vec()).unwrap();
        let rebuilt = Registry::replay(&journal).expect("replay");
        assert_eq!(rebuilt.records(), r.records());
        assert_eq!(rebuilt.counts(), r.counts());
        assert_eq!(rebuilt.clones(), r.clones());
        // Replay is idempotent at the byte level: the rebuilt registry's
        // journal re-serializes to the same bytes.
        assert_eq!(rebuilt.journal_bytes().unwrap(), r.journal_bytes().unwrap());
        assert_eq!(rebuilt.rolling_digest(), r.rolling_digest());
    }

    #[test]
    fn rolling_digest_matches_byte_digest() {
        let r = sample();
        assert_eq!(r.rolling_digest(), journal_digest(r.journal_bytes().unwrap()));
        assert_eq!(Registry::in_memory().rolling_digest(), DIGEST_BASIS);
    }

    #[test]
    fn corrupt_journals_are_rejected_with_line_numbers() {
        for (text, needle) in [
            ("not json\n", "line 1"),
            ("{\"event\":\"register\",\"seq\":2}\n", "seq 2 out of order"),
            ("{\"event\":\"warp\",\"seq\":1}\n", "unknown event"),
            (
                "{\"event\":\"unlock\",\"seq\":1,\"ic\":\"x\",\"client\":\"c\",\"key_len\":2}\n",
                "replay rejected",
            ),
        ] {
            let err = Registry::replay(text).unwrap_err();
            assert!(err.message.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn strict_replay_rejects_a_torn_tail_with_its_line_number() {
        let good = String::from_utf8(sample().journal_bytes().unwrap().to_vec()).unwrap();
        let torn = format!("{good}{{\"event\":\"regi");
        let err = Registry::replay(&torn).unwrap_err();
        assert!(err.message.contains("line 6"), "{err}");
    }

    #[test]
    fn open_discards_a_torn_tail_and_repairs_the_file() {
        let dir = temp_dir("torn");
        let path = dir.join("journal.jsonl");
        let good = String::from_utf8(sample().journal_bytes().unwrap().to_vec()).unwrap();
        // A torn write left half a line with no trailing newline.
        std::fs::write(&path, format!("{good}{{\"event\":\"regi")).unwrap();
        let mut r = Registry::open(&path).unwrap();
        let torn = r.torn_tail().expect("torn tail detected");
        assert_eq!((torn.line, torn.bytes), (6, "{\"event\":\"regi".len()));
        assert_eq!(r.journal_len(), 5, "good prefix fully recovered");
        assert_eq!(r.replayed_events(), 5);
        assert_eq!(r.counts().duplicates, 1);
        // The file was truncated back to the last good byte, so appends
        // continue cleanly.
        r.register("c2", "ic-9", "0011", 0).unwrap();
        drop(r);
        let r = Registry::open(&path).unwrap();
        assert_eq!(r.torn_tail(), None, "repaired file has no torn tail");
        assert_eq!(r.journal_len(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_still_hard_fails_on_mid_file_corruption() {
        let dir = temp_dir("midfile");
        let path = dir.join("journal.jsonl");
        let good = String::from_utf8(sample().journal_bytes().unwrap().to_vec()).unwrap();
        // A newline-terminated garbage line mid-file is not a crash
        // artifact — torn writes never contain the terminator.
        let mut lines: Vec<&str> = good.lines().collect();
        lines.insert(2, "{\"event\":\"regi");
        let mut text = lines.join("\n");
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        let err = Registry::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 3"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backed_registry_recovers_after_restart() {
        let dir = temp_dir("restart");
        let path = dir.join("journal.jsonl");
        {
            let mut r = Registry::open(&path).unwrap();
            r.register("c0", "ic-0", "0101", 1).unwrap();
            r.mark_unlocked("ic-0", 4, "c0").unwrap();
        }
        {
            // Restart: state is rebuilt, and appends continue the sequence.
            let mut r = Registry::open(&path).unwrap();
            assert_eq!(r.by_ic("ic-0").unwrap().state, IcState::Unlocked);
            assert_eq!(r.journal_len(), 2);
            r.register("c0", "ic-1", "1111", 0).unwrap();
        }
        let r = Registry::open(&path).unwrap();
        assert_eq!(r.counts().registered, 2);
        assert_eq!(r.journal_len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_state_digest_and_clone_evidence() {
        let dir = temp_dir("compact");
        let path = dir.join("journal.jsonl");
        // Control: the same events against a never-compacted registry.
        let control = sample();
        {
            let mut r = Registry::open(&path).unwrap();
            r.register("c0", "ic-0", "0101", 1).unwrap();
            r.register("c0", "ic-1", "1110", 0).unwrap();
            r.mark_unlocked("ic-0", 9, "c0").unwrap();
            r.compact().unwrap();
            assert_eq!(
                std::fs::read_to_string(&path).unwrap(),
                "",
                "journal truncated past the snapshot"
            );
            let _ = r.register("c1", "ic-2", "0101", 1).unwrap_err();
            r.mark_disabled("ic-0", "alice").unwrap();
        }
        let r = Registry::open(&path).unwrap();
        assert_eq!(r.records(), control.records());
        assert_eq!(r.counts(), control.counts());
        assert_eq!(r.clones(), control.clones());
        assert_eq!(r.rolling_digest(), control.rolling_digest(), "digest spans compaction");
        assert_eq!(r.snapshot_events(), 3);
        assert_eq!(r.replayed_events(), 2, "only the tail replays");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_skips_tail_lines_the_snapshot_covers() {
        // A crash between the snapshot rename and the journal truncation
        // leaves the full journal next to a snapshot that already covers
        // it. Recovery must skip the covered prefix, not double-apply.
        let dir = temp_dir("skip");
        let path = dir.join("journal.jsonl");
        {
            let mut r = Registry::open(&path).unwrap();
            r.register("c0", "ic-0", "0101", 1).unwrap();
            r.mark_unlocked("ic-0", 4, "c0").unwrap();
            // Snapshot without truncating: simulate the torn compaction.
            let snap = RegistrySnapshot {
                seq: r.journal_len(),
                digest: r.rolling_digest(),
                records: r.records().to_vec(),
                clones: r.clones().to_vec(),
            };
            snap.write_atomic(&snapshot_path(&path)).unwrap();
        }
        let r = Registry::open(&path).unwrap();
        assert_eq!(r.journal_len(), 2);
        assert_eq!(r.counts().unlocked, 1);
        assert_eq!(r.snapshot_events(), 2);
        assert_eq!(r.replayed_events(), 0, "covered lines skipped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_compaction_fires_on_the_configured_cadence() {
        let dir = temp_dir("auto");
        let path = dir.join("journal.jsonl");
        let mut r = Registry::open_with(
            &path,
            RecoverOptions {
                compact_every: 2,
                ..RecoverOptions::default()
            },
        )
        .unwrap();
        r.register("c0", "ic-0", "0101", 1).unwrap();
        assert!(!snapshot_path(&path).exists(), "below threshold");
        r.register("c0", "ic-1", "1110", 0).unwrap();
        let snap = RegistrySnapshot::load(&snapshot_path(&path)).unwrap().unwrap();
        assert_eq!(snap.seq, 2, "auto-compacted at two events");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        r.mark_unlocked("ic-0", 4, "c0").unwrap();
        drop(r);
        let r = Registry::open(&path).unwrap();
        assert_eq!((r.snapshot_events(), r.replayed_events()), (2, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn buffered_policy_flushes_on_drop() {
        let dir = temp_dir("buffered");
        let path = dir.join("journal.jsonl");
        {
            let mut r = Registry::open_with(
                &path,
                RecoverOptions {
                    flush: FlushPolicy::Buffered,
                    ..RecoverOptions::default()
                },
            )
            .unwrap();
            r.register("c0", "ic-0", "0101", 1).unwrap();
        }
        let r = Registry::open(&path).unwrap();
        assert_eq!(r.journal_len(), 1, "clean shutdown flushed the buffer");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_disk_full_refuses_the_mutation_and_recovers() {
        use crate::fault::{ArmedFault, FaultInjector};
        let dir = temp_dir("enospc");
        let path = dir.join("journal.jsonl");
        let injector = FaultInjector::new();
        let mut r = Registry::open_with(
            &path,
            RecoverOptions {
                injector: Some(injector.clone()),
                ..RecoverOptions::default()
            },
        )
        .unwrap();
        r.register("c0", "ic-0", "0101", 1).unwrap();
        injector.arm(ArmedFault::DiskFull);
        let err = r.register("c0", "ic-1", "1110", 0).unwrap_err();
        assert!(matches!(err, RegistryError::Journal(_)), "{err:?}");
        assert_eq!(r.counts().registered, 1, "failed append mutates nothing");
        // The "disk" has space again: the retry succeeds with the same seq.
        r.register("c0", "ic-1", "1110", 0).unwrap();
        assert_eq!(r.by_ic("ic-1").unwrap().seq, 2);
        drop(r);
        let r = Registry::open(&path).unwrap();
        assert_eq!(r.counts().registered, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_distinguishes_journals() {
        assert_ne!(journal_digest(b"a"), journal_digest(b"b"));
        assert_eq!(journal_digest(b""), 0xcbf2_9ce4_8422_2325);
    }
}
