//! The persistent IC registry: per-die state plus an append-only journal.
//!
//! Every state change appends exactly one JSON line to the journal before
//! the in-memory tables change, so the journal is the registry: a crashed
//! or restarted server rebuilds its full state by replaying the file
//! (last-write-wins is unnecessary — events are never rewritten). Events
//! are a pure function of the accepted request sequence, so a fixed
//! request schedule produces byte-identical journals on every run — the
//! harness's determinism contract extends to the serving layer.
//!
//! Journal schema (one compact JSON object per line, `\n`-terminated):
//!
//! ```text
//! {"event":"register","seq":1,"ic":"c0-ic0","client":"c0","readout":"0101...","group":2}
//! {"event":"duplicate","seq":2,"ic":"c1-ic9","client":"c1","prior":"c0-ic0"}
//! {"event":"unlock","seq":3,"ic":"c0-ic0","client":"c0","key_len":9}
//! {"event":"disable","seq":4,"ic":"c0-ic0","client":"c0"}
//! ```
//!
//! `seq` increases by one per event. Keys themselves are **not**
//! journaled (only their length): the designer's activation ledger is the
//! authoritative key store, and keeping key material out of the registry
//! file means a leaked journal discloses no unlock secrets.
//!
//! The `duplicate` event is the passive-metering detector (DAC 2001): two
//! registrations with the same power-up readout mean one of the dies is a
//! clone (or the foundry double-reported) — the collision itself is the
//! evidence, so the rejected attempt is journaled rather than dropped.

use crate::wire::WireError;
use hwm_jsonio::Json;
use hwm_metrics::{MetricClass, MetricsRegistry, LATENCY_BUCKETS_NS};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Lifecycle state of one registered IC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcState {
    /// Fabrication reported; key not yet issued.
    Registered,
    /// Key issued; the die is active in the field.
    Unlocked,
    /// Remotely disabled; no further service.
    Disabled,
}

impl IcState {
    /// Wire/journal name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            IcState::Registered => "registered",
            IcState::Unlocked => "unlocked",
            IcState::Disabled => "disabled",
        }
    }
}

impl fmt::Display for IcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One registered die.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcRecord {
    /// Foundry-assigned label.
    pub ic: String,
    /// Client that registered the die.
    pub client: String,
    /// Power-up readout bit string (the die's identity).
    pub readout: String,
    /// SFFSM group reported at registration.
    pub group: u8,
    /// Current lifecycle state.
    pub state: IcState,
    /// Journal sequence number of the registration event.
    pub seq: u64,
}

/// Why a registry mutation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The readout is already registered to `prior` — clone evidence.
    DuplicateReadout {
        /// The IC that registered this readout first.
        prior: String,
    },
    /// The IC label is already taken.
    DuplicateIc,
    /// No IC with the given label exists.
    UnknownIc,
    /// No IC with the given readout exists.
    UnknownReadout,
    /// The IC is not in a state that allows the mutation.
    WrongState(IcState),
    /// The journal could not be appended; the mutation did not happen.
    Journal(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateReadout { prior } => {
                write!(f, "readout already registered to {prior:?}")
            }
            RegistryError::DuplicateIc => write!(f, "IC label already registered"),
            RegistryError::UnknownIc => write!(f, "no such IC"),
            RegistryError::UnknownReadout => write!(f, "no registered IC has this readout"),
            RegistryError::WrongState(s) => write!(f, "IC is {s}"),
            RegistryError::Journal(e) => write!(f, "journal append failed: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Where journal lines go.
#[derive(Debug)]
enum Journal {
    /// In-memory buffer (tests, benches, ephemeral servers).
    Memory(Vec<u8>),
    /// Append-only file, flushed after every event (write-ahead).
    File(BufWriter<File>),
}

/// Registry counts for status reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryCounts {
    /// ICs ever registered.
    pub registered: u64,
    /// ICs currently unlocked.
    pub unlocked: u64,
    /// ICs disabled.
    pub disabled: u64,
    /// Duplicate-readout attempts rejected.
    pub duplicates: u64,
}

/// The IC registry: in-memory tables fronted by the append-only journal.
#[derive(Debug)]
pub struct Registry {
    records: Vec<IcRecord>,
    by_ic: HashMap<String, usize>,
    by_readout: HashMap<String, usize>,
    journal: Journal,
    seq: u64,
    duplicates: u64,
    /// Live instrumentation sink, when the owning server attached one.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Events rebuilt from an existing journal at open time.
    replayed_events: u64,
    /// Wall time the replay took (ns; scheduling-dependent).
    replay_ns: u64,
}

impl Registry {
    /// An ephemeral registry journaling to memory.
    pub fn in_memory() -> Registry {
        Registry {
            records: Vec::new(),
            by_ic: HashMap::new(),
            by_readout: HashMap::new(),
            journal: Journal::Memory(Vec::new()),
            seq: 0,
            duplicates: 0,
            metrics: None,
            replayed_events: 0,
            replay_ns: 0,
        }
    }

    /// Attaches a live metrics sink: journal appends feed a
    /// `journal_append_ns` timing histogram and `journal_events_total`
    /// event counters, and any replay that happened at open time is
    /// published as `journal_replayed_events` / `journal_replay_ns`
    /// gauges.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        metrics.set_gauge(
            "journal_replayed_events",
            &[],
            MetricClass::Det,
            self.replayed_events,
        );
        metrics.set_gauge("journal_replay_ns", &[], MetricClass::Timing, self.replay_ns);
        self.metrics = Some(metrics);
    }

    /// Opens (or creates) a journal-backed registry at `path`: any existing
    /// journal is replayed into memory, then the file is reopened for
    /// appending — restart recovery is exactly "replay then continue".
    ///
    /// # Errors
    ///
    /// Returns an I/O error for unreadable files and a
    /// [`WireError`]-derived error message for corrupt journal lines
    /// (mapped onto `io::ErrorKind::InvalidData` so callers can
    /// distinguish corruption from filesystem trouble).
    pub fn open(path: &Path) -> std::io::Result<Registry> {
        let started = Instant::now();
        let mut registry = match std::fs::read_to_string(path) {
            Ok(text) => {
                let mut r = Registry::replay(&text).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("corrupt journal {}: {}", path.display(), e.message),
                    )
                })?;
                r.replayed_events = r.seq;
                r.replay_ns = started.elapsed().as_nanos() as u64;
                r
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Registry::in_memory(),
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        registry.journal = Journal::File(BufWriter::new(file));
        Ok(registry)
    }

    /// Rebuilds a registry from journal text (in-memory journaling from
    /// then on; [`Registry::open`] swaps in the file handle).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed lines or impossible event
    /// sequences (e.g. an unlock of an unregistered IC).
    pub fn replay(journal_text: &str) -> Result<Registry, WireError> {
        let mut registry = Registry::in_memory();
        for (lineno, line) in journal_text.lines().enumerate() {
            let fail = |what: &str| {
                WireError::new(format!("journal line {}: {what}", lineno + 1))
            };
            let j = Json::parse(line).map_err(|e| fail(&format!("not JSON: {e}")))?;
            let event = j
                .get("event")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("missing event"))?
                .to_string();
            let seq = j
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or_else(|| fail("missing seq"))?;
            if seq != registry.seq + 1 {
                return Err(fail(&format!(
                    "seq {seq} out of order (expected {})",
                    registry.seq + 1
                )));
            }
            let str_field = |name: &str| {
                j.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| fail(&format!("missing {name}")))
            };
            let apply = match event.as_str() {
                "register" => registry.register(
                    &str_field("client")?,
                    &str_field("ic")?,
                    &str_field("readout")?,
                    j.get("group")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail("missing group"))? as u8,
                ),
                "duplicate" => {
                    // Replaying the rejection re-runs the detector; it must
                    // reject again, which re-counts the duplicate.
                    let client = str_field("client")?;
                    let ic = str_field("ic")?;
                    let prior = str_field("prior")?;
                    let readout = registry
                        .by_ic
                        .get(&prior)
                        .map(|&i| registry.records[i].readout.clone())
                        .ok_or_else(|| fail("duplicate names unknown prior IC"))?;
                    match registry.register(&client, &ic, &readout, 0) {
                        Err(RegistryError::DuplicateReadout { .. }) => Ok(()),
                        _ => return Err(fail("duplicate event did not re-collide")),
                    }
                }
                "unlock" => registry.mark_unlocked(
                    &str_field("ic")?,
                    j.get("key_len")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| fail("missing key_len"))?,
                    &str_field("client")?,
                ),
                "disable" => registry.mark_disabled(&str_field("ic")?, &str_field("client")?),
                other => return Err(fail(&format!("unknown event {other:?}"))),
            };
            apply.map_err(|e| fail(&format!("replay rejected: {e}")))?;
        }
        Ok(registry)
    }

    fn append(&mut self, event: &'static str, line: Json) -> Result<(), RegistryError> {
        let mut text = line.to_string();
        text.push('\n');
        let started = Instant::now();
        let appended = match &mut self.journal {
            Journal::Memory(buf) => {
                buf.extend_from_slice(text.as_bytes());
                Ok(())
            }
            Journal::File(w) => w
                .write_all(text.as_bytes())
                .and_then(|()| w.flush())
                .map_err(|e| RegistryError::Journal(e.to_string())),
        };
        if let Some(m) = &self.metrics {
            m.observe(
                "journal_append_ns",
                &[],
                MetricClass::Timing,
                LATENCY_BUCKETS_NS,
                started.elapsed().as_nanos() as u64,
            );
            if appended.is_ok() {
                m.inc("journal_events_total", &[("event", event)], 1);
            }
        }
        appended
    }

    /// Registers a fabricated IC. The same readout registered twice is the
    /// passive-metering clone signal: the attempt is journaled as a
    /// `duplicate` event and rejected.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateReadout`] / [`RegistryError::DuplicateIc`]
    /// on collision, [`RegistryError::Journal`] when persistence failed.
    pub fn register(
        &mut self,
        client: &str,
        ic: &str,
        readout: &str,
        group: u8,
    ) -> Result<(), RegistryError> {
        if self.by_ic.contains_key(ic) {
            return Err(RegistryError::DuplicateIc);
        }
        if let Some(&i) = self.by_readout.get(readout) {
            let prior = self.records[i].ic.clone();
            let seq = self.seq + 1;
            self.append("duplicate", Json::obj(vec![
                ("event", Json::Str("duplicate".into())),
                ("seq", Json::U64(seq)),
                ("ic", Json::Str(ic.to_string())),
                ("client", Json::Str(client.to_string())),
                ("prior", Json::Str(prior.clone())),
            ]))?;
            self.seq = seq;
            self.duplicates += 1;
            hwm_trace::counter("registry_duplicates", 1);
            return Err(RegistryError::DuplicateReadout { prior });
        }
        let seq = self.seq + 1;
        self.append("register", Json::obj(vec![
            ("event", Json::Str("register".into())),
            ("seq", Json::U64(seq)),
            ("ic", Json::Str(ic.to_string())),
            ("client", Json::Str(client.to_string())),
            ("readout", Json::Str(readout.to_string())),
            ("group", Json::U64(group as u64)),
        ]))?;
        self.seq = seq;
        let index = self.records.len();
        self.records.push(IcRecord {
            ic: ic.to_string(),
            client: client.to_string(),
            readout: readout.to_string(),
            group,
            state: IcState::Registered,
            seq,
        });
        self.by_ic.insert(ic.to_string(), index);
        self.by_readout.insert(readout.to_string(), index);
        hwm_trace::counter("registry_registrations", 1);
        Ok(())
    }

    /// Marks a registered IC unlocked (key issued; only the key's length is
    /// journaled — see the module docs).
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownIc`] or [`RegistryError::WrongState`] when
    /// the IC is not awaiting a key.
    pub fn mark_unlocked(
        &mut self,
        ic: &str,
        key_len: usize,
        client: &str,
    ) -> Result<(), RegistryError> {
        let &index = self.by_ic.get(ic).ok_or(RegistryError::UnknownIc)?;
        match self.records[index].state {
            IcState::Registered => {}
            other => return Err(RegistryError::WrongState(other)),
        }
        let seq = self.seq + 1;
        self.append("unlock", Json::obj(vec![
            ("event", Json::Str("unlock".into())),
            ("seq", Json::U64(seq)),
            ("ic", Json::Str(ic.to_string())),
            ("client", Json::Str(client.to_string())),
            ("key_len", Json::U64(key_len as u64)),
        ]))?;
        self.seq = seq;
        self.records[index].state = IcState::Unlocked;
        hwm_trace::counter("registry_unlocks", 1);
        Ok(())
    }

    /// Marks an IC disabled (from any live state).
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownIc`] or [`RegistryError::WrongState`] when
    /// already disabled.
    pub fn mark_disabled(&mut self, ic: &str, client: &str) -> Result<(), RegistryError> {
        let &index = self.by_ic.get(ic).ok_or(RegistryError::UnknownIc)?;
        if self.records[index].state == IcState::Disabled {
            return Err(RegistryError::WrongState(IcState::Disabled));
        }
        let seq = self.seq + 1;
        self.append("disable", Json::obj(vec![
            ("event", Json::Str("disable".into())),
            ("seq", Json::U64(seq)),
            ("ic", Json::Str(ic.to_string())),
            ("client", Json::Str(client.to_string())),
        ]))?;
        self.seq = seq;
        self.records[index].state = IcState::Disabled;
        hwm_trace::counter("registry_disables", 1);
        Ok(())
    }

    /// Looks up a record by IC label.
    pub fn by_ic(&self, ic: &str) -> Option<&IcRecord> {
        self.by_ic.get(ic).map(|&i| &self.records[i])
    }

    /// Looks up a record by readout bit string.
    pub fn by_readout(&self, readout: &str) -> Option<&IcRecord> {
        self.by_readout.get(readout).map(|&i| &self.records[i])
    }

    /// Current counts.
    pub fn counts(&self) -> RegistryCounts {
        let mut c = RegistryCounts {
            registered: self.records.len() as u64,
            duplicates: self.duplicates,
            ..RegistryCounts::default()
        };
        for r in &self.records {
            match r.state {
                IcState::Registered => {}
                IcState::Unlocked => c.unlocked += 1,
                IcState::Disabled => c.disabled += 1,
            }
        }
        c
    }

    /// Journal events appended so far.
    pub fn journal_len(&self) -> u64 {
        self.seq
    }

    /// The journal bytes, when journaling to memory (`None` for a
    /// file-backed registry — read the file instead).
    pub fn journal_bytes(&self) -> Option<&[u8]> {
        match &self.journal {
            Journal::Memory(buf) => Some(buf),
            Journal::File(_) => None,
        }
    }

    /// All records, in registration order.
    pub fn records(&self) -> &[IcRecord] {
        &self.records
    }
}

/// FNV-1a digest of journal bytes — a compact fingerprint for the
/// determinism checks ("byte-identical journal for every `--jobs`").
pub fn journal_digest(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::in_memory();
        r.register("c0", "ic-0", "0101", 1).unwrap();
        r.register("c0", "ic-1", "1110", 0).unwrap();
        r.mark_unlocked("ic-0", 9, "c0").unwrap();
        let err = r.register("c1", "ic-2", "0101", 1).unwrap_err();
        assert_eq!(
            err,
            RegistryError::DuplicateReadout {
                prior: "ic-0".into()
            }
        );
        r.mark_disabled("ic-0", "alice").unwrap();
        r
    }

    #[test]
    fn lifecycle_and_counts() {
        let r = sample();
        assert_eq!(r.by_ic("ic-0").unwrap().state, IcState::Disabled);
        assert_eq!(r.by_ic("ic-1").unwrap().state, IcState::Registered);
        assert_eq!(r.by_readout("1110").unwrap().ic, "ic-1");
        let c = r.counts();
        assert_eq!((c.registered, c.unlocked, c.disabled, c.duplicates), (2, 0, 1, 1));
        assert_eq!(r.journal_len(), 5);
    }

    #[test]
    fn wrong_state_transitions_are_refused() {
        let mut r = sample();
        assert!(matches!(
            r.mark_unlocked("ic-0", 3, "c0"),
            Err(RegistryError::WrongState(IcState::Disabled))
        ));
        assert!(matches!(
            r.mark_disabled("ic-0", "alice"),
            Err(RegistryError::WrongState(IcState::Disabled))
        ));
        assert!(matches!(
            r.mark_unlocked("nope", 3, "c0"),
            Err(RegistryError::UnknownIc)
        ));
    }

    #[test]
    fn replay_rebuilds_identical_state_and_journal() {
        let r = sample();
        let journal = String::from_utf8(r.journal_bytes().unwrap().to_vec()).unwrap();
        let rebuilt = Registry::replay(&journal).expect("replay");
        assert_eq!(rebuilt.records(), r.records());
        assert_eq!(rebuilt.counts(), r.counts());
        // Replay is idempotent at the byte level: the rebuilt registry's
        // journal re-serializes to the same bytes.
        assert_eq!(rebuilt.journal_bytes().unwrap(), r.journal_bytes().unwrap());
    }

    #[test]
    fn corrupt_journals_are_rejected_with_line_numbers() {
        for (text, needle) in [
            ("not json\n", "line 1"),
            ("{\"event\":\"register\",\"seq\":2}\n", "seq 2 out of order"),
            ("{\"event\":\"warp\",\"seq\":1}\n", "unknown event"),
            (
                "{\"event\":\"unlock\",\"seq\":1,\"ic\":\"x\",\"client\":\"c\",\"key_len\":2}\n",
                "replay rejected",
            ),
        ] {
            let err = Registry::replay(text).unwrap_err();
            assert!(err.message.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn file_backed_registry_recovers_after_restart() {
        let dir = std::env::temp_dir().join("hwm_service_registry_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        {
            let mut r = Registry::open(&path).unwrap();
            r.register("c0", "ic-0", "0101", 1).unwrap();
            r.mark_unlocked("ic-0", 4, "c0").unwrap();
        }
        {
            // Restart: state is rebuilt, and appends continue the sequence.
            let mut r = Registry::open(&path).unwrap();
            assert_eq!(r.by_ic("ic-0").unwrap().state, IcState::Unlocked);
            assert_eq!(r.journal_len(), 2);
            r.register("c0", "ic-1", "1111", 0).unwrap();
        }
        let r = Registry::open(&path).unwrap();
        assert_eq!(r.counts().registered, 2);
        assert_eq!(r.journal_len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_distinguishes_journals() {
        assert_ne!(journal_digest(b"a"), journal_digest(b"b"));
        assert_eq!(journal_digest(b""), 0xcbf2_9ce4_8422_2325);
    }
}
