//! The activation server: Alice's side of Figure 2 as a service.
//!
//! An [`ActivationServer`] owns the [`Designer`] (the only party able to
//! compute keys), the persistent [`Registry`] and the [`RateLimiter`], all
//! behind one mutex: handlers execute serially against the shared state
//! (key issuance appends to the royalty ledger and the registry journal —
//! both are order-sensitive), while transports accept and decode any
//! number of connections concurrently. The logical clock ticks once per
//! request, so every admission decision, journal line and ledger entry is
//! a pure function of the request sequence — the workspace's determinism
//! contract, extended to the serving layer.
//!
//! Request semantics:
//!
//! * **Register** — validates that the readout decodes under the
//!   blueprint (a garbage readout is a *wrong-readout failure* counted
//!   toward lockout), then records the die. A readout that is already
//!   registered is rejected as passive-metering clone evidence.
//! * **Unlock** — looks the readout up in the registry (Alice only issues
//!   keys for reported dies; an unknown readout is a wrong-readout
//!   failure), computes the key via [`Designer::issue_key`] and marks the
//!   die unlocked. Keys are issued exactly once per die.
//! * **RemoteDisable** — marks the die disabled and returns the §8 kill
//!   sequence.
//! * **Status** — registry counts and optional per-IC state.
//!
//! Every handler opens an `hwm-trace` span and bumps counters, so a
//! `--profile` run of the serving benchmark breaks down exactly like the
//! offline tables.

use crate::registry::{Registry, RegistryError};
use crate::throttle::{Decision, RateLimiter, ThrottleConfig};
use crate::wire::{parse_readout_bits, ErrorCode, Request, Response, StatusReport};
use hwm_metering::{Designer, MeteringError, ScanReadout};
use std::sync::Mutex;

/// Server tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerConfig {
    /// Admission-control tuning.
    pub throttle: ThrottleConfig,
}

struct Inner {
    designer: Designer,
    registry: Registry,
    limiter: RateLimiter,
    clock: u64,
}

/// The shared, thread-safe activation server.
pub struct ActivationServer {
    inner: Mutex<Inner>,
}

impl ActivationServer {
    /// Builds a server around a designer and a registry.
    pub fn new(designer: Designer, registry: Registry, config: ServerConfig) -> ActivationServer {
        ActivationServer {
            inner: Mutex::new(Inner {
                designer,
                registry,
                limiter: RateLimiter::new(config.throttle),
                clock: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("server state poisoned")
    }

    /// Handles one request. Safe to call from any number of threads; the
    /// handler body serializes on the server mutex.
    pub fn handle(&self, req: &Request) -> Response {
        let mut inner = self.lock();
        inner.clock += 1;
        let now = inner.clock;
        hwm_trace::counter("service_requests", 1);
        match inner.limiter.check(req.client(), now) {
            Decision::Allowed => {}
            Decision::Throttled { retry_at } => {
                hwm_trace::counter("service_throttled", 1);
                return Response::Error {
                    code: ErrorCode::Throttled,
                    message: format!("rate limit: retry at tick {retry_at}"),
                    retry_at: Some(retry_at),
                };
            }
            Decision::LockedOut { until } => {
                hwm_trace::counter("service_locked_out", 1);
                return Response::Error {
                    code: ErrorCode::LockedOut,
                    message: format!("locked out until tick {until}"),
                    retry_at: Some(until),
                };
            }
        }
        match req {
            Request::Register {
                client,
                ic,
                readout,
            } => {
                let _span = hwm_trace::span("service.register");
                inner.register(client, ic, readout, now)
            }
            Request::Unlock { client, readout } => {
                let _span = hwm_trace::span("service.unlock");
                inner.unlock(client, readout, now)
            }
            Request::RemoteDisable { client, ic } => {
                let _span = hwm_trace::span("service.disable");
                inner.disable(client, ic)
            }
            Request::Status { ic, .. } => {
                let _span = hwm_trace::span("service.status");
                inner.status(ic.as_deref())
            }
        }
    }

    /// Registry counts plus lockout total (the Status view, lock-free for
    /// callers already outside a request).
    pub fn status(&self) -> StatusReport {
        self.lock().status_report(None)
    }

    /// Logical ticks elapsed (= requests received).
    pub fn clock(&self) -> u64 {
        self.lock().clock
    }

    /// Keys issued so far (the designer's royalty count).
    pub fn activations(&self) -> usize {
        self.lock().designer.activations()
    }

    /// Runs `f` against the registry (journal digests, record inspection).
    pub fn with_registry<T>(&self, f: impl FnOnce(&Registry) -> T) -> T {
        f(&self.lock().registry)
    }
}

impl Inner {
    fn status_report(&self, ic: Option<&str>) -> StatusReport {
        let c = self.registry.counts();
        StatusReport {
            registered: c.registered,
            unlocked: c.unlocked,
            disabled: c.disabled,
            duplicates: c.duplicates,
            lockouts: self.limiter.total_lockouts(),
            ic_state: ic.and_then(|ic| {
                self.registry
                    .by_ic(ic)
                    .map(|r| r.state.as_str().to_string())
            }),
        }
    }

    /// A wrong readout was submitted: count it and lock the client out
    /// past the threshold.
    fn wrong_readout(&mut self, client: &str, now: u64, code: ErrorCode, message: String) -> Response {
        hwm_trace::counter("service_wrong_readouts", 1);
        let retry_at = self.limiter.record_failure(client, now);
        Response::Error {
            code,
            message,
            retry_at,
        }
    }

    fn register(&mut self, client: &str, ic: &str, readout: &str, now: u64) -> Response {
        let bits = match parse_readout_bits(readout) {
            Ok(bits) => bits,
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.message,
                    retry_at: None,
                }
            }
        };
        // A readout that does not decode under the blueprint cannot have
        // come from a die of this design: wrong-readout failure.
        let group = match self.designer.blueprint().parse_readout(&bits) {
            Ok((_, group)) => group,
            Err(_) => {
                return self.wrong_readout(
                    client,
                    now,
                    ErrorCode::UnknownReadout,
                    "readout does not decode to a locked state of this design".into(),
                )
            }
        };
        match self.registry.register(client, ic, readout, group) {
            Ok(()) => {
                self.limiter.record_success(client);
                Response::Registered {
                    ic: ic.to_string(),
                    total: self.registry.counts().registered,
                }
            }
            Err(RegistryError::DuplicateReadout { prior }) => Response::Error {
                code: ErrorCode::DuplicateReadout,
                message: format!("readout already registered to {prior:?} — clone suspected"),
                retry_at: None,
            },
            Err(RegistryError::DuplicateIc) => Response::Error {
                code: ErrorCode::DuplicateIc,
                message: format!("IC {ic:?} is already registered"),
                retry_at: None,
            },
            Err(e) => Response::Error {
                code: ErrorCode::Malformed,
                message: e.to_string(),
                retry_at: None,
            },
        }
    }

    fn unlock(&mut self, client: &str, readout: &str, now: u64) -> Response {
        let bits = match parse_readout_bits(readout) {
            Ok(bits) => bits,
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.message,
                    retry_at: None,
                }
            }
        };
        let (ic, state) = match self.registry.by_readout(readout) {
            Some(r) => (r.ic.clone(), r.state),
            None => {
                // Unregistered readout: either a brute-force guess or an
                // unreported (overbuilt) die — both count toward lockout.
                return self.wrong_readout(
                    client,
                    now,
                    ErrorCode::UnknownReadout,
                    "readout does not belong to any registered IC".into(),
                );
            }
        };
        match state {
            crate::registry::IcState::Registered => {}
            crate::registry::IcState::Unlocked => {
                return Response::Error {
                    code: ErrorCode::AlreadyUnlocked,
                    message: format!("{ic:?} was already issued its key"),
                    retry_at: None,
                }
            }
            crate::registry::IcState::Disabled => {
                return Response::Error {
                    code: ErrorCode::Disabled,
                    message: format!("{ic:?} was remotely disabled"),
                    retry_at: None,
                }
            }
        }
        let key = match self.designer.issue_key(&ScanReadout(bits)) {
            Ok(key) => key,
            Err(MeteringError::NoKeyExists) => {
                // A registered die stuck in a black hole: a service
                // failure, not attack evidence.
                return Response::Error {
                    code: ErrorCode::NoKeyExists,
                    message: format!("{ic:?} sits in a black hole; no key exists"),
                    retry_at: None,
                };
            }
            Err(e) => {
                return self.wrong_readout(
                    client,
                    now,
                    ErrorCode::UnknownReadout,
                    format!("key computation rejected the readout: {e}"),
                )
            }
        };
        if let Err(e) = self.registry.mark_unlocked(&ic, key.len(), client) {
            return Response::Error {
                code: ErrorCode::Malformed,
                message: format!("registry refused the unlock: {e}"),
                retry_at: None,
            };
        }
        self.limiter.record_success(client);
        hwm_trace::counter("service_keys_issued", 1);
        Response::Key {
            ic,
            key: key.values,
        }
    }

    fn disable(&mut self, client: &str, ic: &str) -> Response {
        match self.registry.mark_disabled(ic, client) {
            Ok(()) => Response::Disabled {
                ic: ic.to_string(),
                kill: self.designer.kill_sequence(),
            },
            Err(RegistryError::UnknownIc) => Response::Error {
                code: ErrorCode::UnknownIc,
                message: format!("no registered IC {ic:?}"),
                retry_at: None,
            },
            Err(RegistryError::WrongState(s)) => Response::Error {
                code: ErrorCode::Disabled,
                message: format!("{ic:?} is already {s}"),
                retry_at: None,
            },
            Err(e) => Response::Error {
                code: ErrorCode::Malformed,
                message: e.to_string(),
                retry_at: None,
            },
        }
    }

    fn status(&self, ic: Option<&str>) -> Response {
        if let Some(name) = ic {
            if self.registry.by_ic(name).is_none() {
                return Response::Error {
                    code: ErrorCode::UnknownIc,
                    message: format!("no registered IC {name:?}"),
                    retry_at: None,
                };
            }
        }
        Response::Status(self.status_report(ic))
    }
}
