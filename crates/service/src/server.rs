//! The activation server: Alice's side of Figure 2 as a service.
//!
//! An [`ActivationServer`] owns the [`Designer`] (the only party able to
//! compute keys), the persistent [`Registry`] and the [`RateLimiter`], all
//! behind one mutex: handlers execute serially against the shared state
//! (key issuance appends to the royalty ledger and the registry journal —
//! both are order-sensitive), while transports accept and decode any
//! number of connections concurrently. The logical clock ticks once per
//! request, so every admission decision, journal line and ledger entry is
//! a pure function of the request sequence — the workspace's determinism
//! contract, extended to the serving layer.
//!
//! Request semantics:
//!
//! * **Register** — validates that the readout decodes under the
//!   blueprint (a garbage readout is a *wrong-readout failure* counted
//!   toward lockout), then records the die. A readout that is already
//!   registered is rejected as passive-metering clone evidence.
//! * **Unlock** — looks the readout up in the registry (Alice only issues
//!   keys for reported dies; an unknown readout is a wrong-readout
//!   failure), computes the key via [`Designer::issue_key`] and marks the
//!   die unlocked. Keys are issued exactly once per die.
//! * **RemoteDisable** — marks the die disabled and returns the §8 kill
//!   sequence.
//! * **Status** — registry counts and optional per-IC state.
//!
//! Every handler opens an `hwm-trace` span and bumps counters, so a
//! `--profile` run of the serving benchmark breaks down exactly like the
//! offline tables.
//!
//! On top of the post-hoc trace, the server carries **live** telemetry
//! (`hwm-metrics`): outcome-labelled request counters, per-op latency
//! histograms, journal append/replay timings, and an append-only audit
//! stream of security alerts (duplicate readouts, lockouts, remote
//! disables, black-hole dies). The `Metrics`/`Audit` wire requests expose
//! both on the admin plane — unthrottled, clock-neutral, and invisible to
//! the service counters, so a polling monitor never perturbs what it
//! measures. Deterministic metrics (class `det`) are pure functions of
//! the accepted request sequence; wall-clock ones (class `timing`) are
//! excluded from the determinism contract, mirroring the trace crate's
//! counter/gauge split.

use crate::registry::{Registry, RegistryError};
use crate::snapshot::RegistrySnapshot;
use crate::storage::FlushPolicy;
use crate::throttle::{Decision, RateLimiter, ThrottleConfig};
use crate::wire::{parse_readout_bits, ErrorCode, Request, Response, StatusReport, WireError};
use hwm_metering::{Designer, MeteringError, ScanReadout};
use hwm_metrics::{
    AlertEngine, AlertRuleSet, AuditEvent, AuditLog, AuditValue, History, HistoryConfig,
    HistoryDump, MetricClass, MetricsRegistry, RuleStatus, Snapshot, ALERT_FIRE_KIND,
    ALERT_RESOLVE_KIND, LATENCY_BUCKETS_NS,
};
use hwm_trace::{spans_to_jsonl, SpanRecord, TraceContext, TraceRing, TraceScope};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Bucket bounds for the det-class `service_request_units` histogram:
/// span-tree size plus journal work per traced request.
const REQUEST_UNITS_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32];

/// The role a server plays in a replicated shard group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ServerRole {
    /// Accepts client mutations and (when replication capture is armed)
    /// ships its journal entries to followers. Single-node deployments
    /// are leaders of a group of one.
    #[default]
    Leader,
    /// Accepts only replicated journal entries and admin-plane reads;
    /// every non-admin wire request is refused with
    /// [`ErrorCode::NotLeader`]. Promoted to leader on failover via
    /// [`ActivationServer::promote`].
    Follower,
}

/// Server tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Admission-control tuning.
    pub throttle: ThrottleConfig,
    /// Journal durability per append (see [`FlushPolicy`]). Applies to
    /// file-backed registries; in-memory journals ignore it.
    pub flush: FlushPolicy,
    /// Accept-loop poll sleep in milliseconds for TCP front ends serving
    /// this server (see [`crate::transport::TcpServer::spawn_with_poll`]).
    pub accept_poll_ms: u64,
    /// Time-series sampling: det-class series are snapshotted into the
    /// ring-buffer history every `history.stride` logical ticks. The
    /// default samples every 4 ticks, 256 samples per series; use
    /// [`HistoryConfig::disabled`] to switch sampling off entirely.
    pub history: HistoryConfig,
    /// Replication role (default: [`ServerRole::Leader`]). Followers run
    /// with live metrics detached until promotion so replicated appends
    /// are not double-counted against the leader's.
    pub role: ServerRole,
    /// Distributed-tracing seed. `None` (the default) leaves tracing off:
    /// the server derives no root contexts and records no spans of its
    /// own, so untraced runs stay byte-identical to pre-tracing builds. A
    /// request that *arrives* with an explicit trace context is always
    /// captured regardless of this setting — that is how shard replicas
    /// behind a traced router participate without any local config.
    pub trace_seed: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            throttle: ThrottleConfig::default(),
            flush: FlushPolicy::default(),
            accept_poll_ms: crate::transport::DEFAULT_ACCEPT_POLL_MS,
            history: HistoryConfig::default(),
            role: ServerRole::default(),
            trace_seed: None,
        }
    }
}

struct Inner {
    designer: Designer,
    registry: Registry,
    limiter: RateLimiter,
    clock: u64,
    audit: AuditLog,
    metrics: Arc<MetricsRegistry>,
    history: History,
    engine: AlertEngine,
    role: ServerRole,
    /// Node label stamped on every span this server records.
    node: String,
    trace_seed: Option<u64>,
    /// Per-node span ring served by the `Traces` admin request.
    traces: TraceRing,
    /// Spans recorded for *forwarded* requests (trace context with a
    /// parent), awaiting collection into the replication `Reply` frame.
    trace_outbox: Vec<SpanRecord>,
}

/// The shared, thread-safe activation server.
pub struct ActivationServer {
    inner: Mutex<Inner>,
    metrics: Arc<MetricsRegistry>,
}

impl ActivationServer {
    /// Builds a server around a designer and a registry, with an
    /// in-memory audit log.
    pub fn new(designer: Designer, registry: Registry, config: ServerConfig) -> ActivationServer {
        ActivationServer::with_audit(designer, registry, config, AuditLog::new())
    }

    /// Builds a server with an explicit audit log (e.g. one mirroring to
    /// an `audit.jsonl` file via [`AuditLog::with_file`]).
    pub fn with_audit(
        designer: Designer,
        registry: Registry,
        config: ServerConfig,
        audit: AuditLog,
    ) -> ActivationServer {
        ActivationServer::resume(designer, registry, config, audit, 0)
    }

    /// Builds a server resuming a prior incarnation: the registry is
    /// typically recovered via [`Registry::open_with`], the audit log via
    /// [`AuditLog::resume_file`], and `clock` restores the logical clock.
    ///
    /// The logical clock is the index into the *delivered-response*
    /// sequence — transport/driver state, not registry state (the journal
    /// only records accepted mutations). A restarting driver that wants
    /// tick-exact continuity — the crash simulation's oracle contract —
    /// passes the number of responses it has delivered so far; a driver
    /// that does not care passes 0 and gets a fresh clock, exactly like
    /// [`ActivationServer::with_audit`].
    ///
    /// Rate-limiter state (token levels, failure streaks, active
    /// lockouts) is deliberately *not* restored: it is denial-of-service
    /// armor, not protocol state, and journaling every admission decision
    /// would dwarf the registry. A crash therefore forgives an active
    /// lockout — the brute-force analysis in `hwm_attacks::online`
    /// assumes the attacker cannot crash the server at will.
    pub fn resume(
        designer: Designer,
        mut registry: Registry,
        config: ServerConfig,
        audit: AuditLog,
        clock: u64,
    ) -> ActivationServer {
        let metrics = Arc::new(MetricsRegistry::default());
        registry.set_flush_policy(config.flush);
        if config.role == ServerRole::Leader {
            // Followers run with registry metrics detached until
            // promotion: their appends replicate the leader's and must
            // not be double-counted against the fleet totals.
            registry.set_metrics(Arc::clone(&metrics));
            if registry.snapshot_events() > 0
                || registry.replayed_events() > 0
                || registry.torn_tail().is_some()
            {
                // This process inherited state from a prior incarnation.
                metrics.inc("journal_recoveries_total", &[], 1);
                hwm_trace::counter("journal_recoveries", 1);
            }
        }
        ActivationServer {
            inner: Mutex::new(Inner {
                designer,
                registry,
                limiter: RateLimiter::new(config.throttle),
                clock,
                audit,
                metrics: Arc::clone(&metrics),
                history: History::new(config.history),
                engine: AlertEngine::new(AlertRuleSet::default()),
                role: config.role,
                node: "server".to_string(),
                trace_seed: config.trace_seed,
                traces: TraceRing::default(),
                trace_outbox: Vec::new(),
            }),
            metrics,
        }
    }

    /// Sets the node label stamped on spans this server records (e.g.
    /// `shard0/leader`). The default is `server`.
    pub fn set_node_name(&self, name: &str) {
        self.lock().node = name.to_string();
    }

    /// The node label stamped on spans this server records.
    pub fn node_name(&self) -> String {
        self.lock().node.clone()
    }

    /// Arms (or disarms) root-context derivation; see
    /// [`ServerConfig::trace_seed`].
    pub fn set_trace_seed(&self, seed: Option<u64>) {
        self.lock().trace_seed = seed;
    }

    /// The newest `limit` spans in this node's ring (all of them when
    /// `limit` is `None`) — what the `Traces` wire request returns.
    pub fn trace_records(&self, limit: Option<usize>) -> Vec<SpanRecord> {
        self.lock().traces.records(limit)
    }

    /// This node's span ring as JSONL — what `--traces-out` writes.
    pub fn trace_dump(&self) -> String {
        spans_to_jsonl(&self.lock().traces.records(None))
    }

    /// Takes the spans recorded for forwarded requests since the last
    /// drain — a shard leader returns these in its replication `Reply`
    /// so the router can assemble one tree per routed request.
    pub fn drain_trace_outbox(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.lock().trace_outbox)
    }

    /// Records externally assembled spans into this node's ring (e.g. a
    /// follower's `replicate/apply` span, recorded by the replication
    /// frame handler rather than the request path).
    pub fn record_spans(&self, spans: &[SpanRecord]) {
        let mut inner = self.lock();
        for s in spans {
            inner.traces.push(s.clone());
        }
    }

    /// Installs (or replaces) the alert rule set. Firing state is seeded
    /// from the audit log — a rule whose last recorded transition was
    /// `alert_fire` resumes in the firing state, so a restarted server
    /// does not re-announce alerts it already raised. The sampled
    /// history itself is serving-lifetime state (like the rate limiter:
    /// observability armor, not protocol state) and always starts empty.
    pub fn set_alert_rules(&self, rules: AlertRuleSet) {
        let mut inner = self.lock();
        let mut engine = AlertEngine::new(rules);
        for e in inner.audit.events() {
            if e.kind == ALERT_FIRE_KIND || e.kind == ALERT_RESOLVE_KIND {
                if let Some(rule) = e.str_field("rule") {
                    engine.fold_audit(&e.kind, rule, e.tick);
                }
            }
        }
        inner.engine = engine;
    }

    /// The current standing of every installed alert rule, evaluated
    /// against the sampled history (read-only: no transitions fire).
    pub fn alert_statuses(&self) -> Vec<RuleStatus> {
        let inner = self.lock();
        inner.engine.statuses(inner.clock, &inner.history)
    }

    /// The sampled time-series history, optionally trimmed to the last
    /// `window` ticks — what the `History` wire request returns.
    pub fn history_dump(&self, window: Option<u64>) -> HistoryDump {
        self.lock().history.dump(window)
    }

    /// The alert transitions recorded so far (audit kinds `alert_fire` /
    /// `alert_resolve`) as JSONL bytes — what `--alerts-out` writes.
    pub fn alerts_jsonl(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for e in inner.audit.events() {
            if e.kind == ALERT_FIRE_KIND || e.kind == ALERT_RESOLVE_KIND {
                out.push_str(&e.to_json().to_string());
                out.push('\n');
            }
        }
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("server state poisoned")
    }

    /// The live metrics registry (e.g. to disable collection for an
    /// overhead baseline, or to snapshot without a wire round trip).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A snapshot with the state gauges (per-state IC counts, logical
    /// clock, lockout and audit totals) refreshed under the server lock —
    /// what the `Metrics` wire request returns.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        inner.refresh_gauges();
        self.metrics.snapshot()
    }

    /// The audit log rendered as JSONL (the bytes an `audit.jsonl` file
    /// sink holds).
    pub fn audit_jsonl(&self) -> String {
        self.lock().audit.to_jsonl()
    }

    /// Handles one request. Safe to call from any number of threads; the
    /// handler body serializes on the server mutex.
    ///
    /// Admin-plane requests (`Metrics`/`Audit`) are answered without
    /// ticking the logical clock, consuming throttle tokens, or touching
    /// the request counters: observability must not perturb admission
    /// decisions, and a polling monitor must not show up in the fleet
    /// numbers it reports.
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_at_traced(req, None, None)
    }

    /// [`ActivationServer::handle`] with an optional trace context — the
    /// entry point transports use after decoding a [`TracedRequest`].
    pub fn handle_traced(&self, req: &Request, trace: Option<&TraceContext>) -> Response {
        self.handle_at_traced(req, None, trace)
    }

    /// Handles one request at an explicit logical tick. A cluster router
    /// owns the global clock and passes `Some(tick)` so every shard's
    /// admission decisions, journal lines and audit events land at the
    /// same tick a single-node server would have used; `None` ticks the
    /// server's own clock (the single-node path, identical to
    /// [`ActivationServer::handle`]).
    pub fn handle_at(&self, req: &Request, tick: Option<u64>) -> Response {
        self.handle_at_traced(req, tick, None)
    }

    /// [`ActivationServer::handle_at`] with an optional trace context.
    ///
    /// Tracing rule: a request arriving *with* a context is always
    /// captured (a forwarded context's spans also land in the trace
    /// outbox for the replication reply); without one, a root context is
    /// derived only when [`ServerConfig::trace_seed`] is set. Span ids
    /// are pure functions of the trace id and span-tree position, and
    /// span ticks are logical — no wall clock, no randomness — so trace
    /// dumps are byte-identical across runs and transports.
    pub fn handle_at_traced(
        &self,
        req: &Request,
        tick: Option<u64>,
        trace: Option<&TraceContext>,
    ) -> Response {
        let started = Instant::now();
        let mut inner = self.lock();
        match req {
            Request::Metrics { .. } => {
                let _span = hwm_trace::span("service.metrics");
                inner.refresh_gauges();
                return Response::Metrics {
                    snapshot: self.metrics.snapshot(),
                };
            }
            Request::Audit { since, .. } => {
                let _span = hwm_trace::span("service.audit");
                let (events, next) = inner.audit.events_since(since.unwrap_or(0));
                return Response::Audit { events, next };
            }
            Request::History { window, .. } => {
                let _span = hwm_trace::span("service.history");
                return Response::History {
                    history: inner.history.dump(*window),
                };
            }
            Request::Traces { limit, .. } => {
                let _span = hwm_trace::span("service.traces");
                return Response::Traces {
                    spans: inner.traces.records(limit.map(|l| l as usize)),
                };
            }
            _ => {}
        }
        if inner.role == ServerRole::Follower {
            // Refused before the clock ticks or any counter moves: a
            // follower's det-class state must stay a pure function of
            // the replicated entry stream, not of misdirected traffic.
            return Response::Error {
                code: ErrorCode::NotLeader,
                message: "shard follower: mutations must go through the leader".into(),
                retry_at: None,
            };
        }
        let now = match tick {
            Some(t) => {
                inner.clock = t;
                t
            }
            None => {
                inner.clock += 1;
                inner.clock
            }
        };
        hwm_trace::counter("service_requests", 1);
        let op = match req {
            Request::Register { .. } => "register",
            Request::Unlock { .. } => "unlock",
            Request::RemoteDisable { .. } => "disable",
            Request::Status { .. } => "status",
            Request::Metrics { .. }
            | Request::Audit { .. }
            | Request::History { .. }
            | Request::Traces { .. } => {
                unreachable!("admin handled above")
            }
        };
        // A supplied context is always honored; otherwise derive a root
        // context only when tracing is armed. Done before dispatch so the
        // journal length delta below is attributable to this request.
        let ctx = match trace {
            Some(c) => Some(*c),
            None => inner
                .trace_seed
                .map(|seed| TraceContext::root(seed, now, req.client(), op)),
        };
        let journal_before = inner.registry.journal_len();
        let resp = match inner.limiter.check(req.client(), now) {
            Decision::Allowed => match req {
                Request::Register {
                    client,
                    ic,
                    readout,
                } => {
                    let _span = hwm_trace::span("service.register");
                    inner.register(client, ic, readout, now)
                }
                Request::Unlock { client, readout } => {
                    let _span = hwm_trace::span("service.unlock");
                    inner.unlock(client, readout, now)
                }
                Request::RemoteDisable { client, ic } => {
                    let _span = hwm_trace::span("service.disable");
                    inner.disable(client, ic, now)
                }
                Request::Status { ic, .. } => {
                    let _span = hwm_trace::span("service.status");
                    inner.status(ic.as_deref())
                }
                Request::Metrics { .. }
                | Request::Audit { .. }
                | Request::History { .. }
                | Request::Traces { .. } => {
                    unreachable!("admin handled above")
                }
            },
            Decision::Throttled { retry_at } => {
                hwm_trace::counter("service_throttled", 1);
                Response::Error {
                    code: ErrorCode::Throttled,
                    message: format!("rate limit: retry at tick {retry_at}"),
                    retry_at: Some(retry_at),
                }
            }
            Decision::LockedOut { until } => {
                hwm_trace::counter("service_locked_out", 1);
                Response::Error {
                    code: ErrorCode::LockedOut,
                    message: format!("locked out until tick {until}"),
                    retry_at: Some(until),
                }
            }
        };
        let outcome = match &resp {
            Response::Registered { .. } => "registered",
            Response::Key { .. } => "key",
            Response::Disabled { .. } => "disabled",
            Response::Status(_) => "status",
            Response::Metrics { .. }
            | Response::Audit { .. }
            | Response::History { .. }
            | Response::Traces { .. } => {
                unreachable!("admin handled above")
            }
            Response::Error { code, .. } => code.as_str(),
        };
        if let Some(ctx) = ctx {
            inner.record_request_trace(&ctx, req, op, outcome, now, journal_before);
        }
        inner
            .metrics
            .inc("service_requests_total", &[("op", op), ("outcome", outcome)], 1);
        inner.metrics.observe(
            "service_handler_ns",
            &[("op", op)],
            MetricClass::Timing,
            LATENCY_BUCKETS_NS,
            started.elapsed().as_nanos() as u64,
        );
        inner.sample_and_alert(now);
        resp
    }

    /// Registry counts plus lockout total (the Status view, lock-free for
    /// callers already outside a request).
    pub fn status(&self) -> StatusReport {
        self.lock().status_report(None)
    }

    /// Logical ticks elapsed (= requests received).
    pub fn clock(&self) -> u64 {
        self.lock().clock
    }

    /// Keys issued so far (the designer's royalty count).
    pub fn activations(&self) -> usize {
        self.lock().designer.activations()
    }

    /// Runs `f` against the registry (journal digests, record inspection).
    pub fn with_registry<T>(&self, f: impl FnOnce(&Registry) -> T) -> T {
        f(&self.lock().registry)
    }

    /// Forces any group-commit batch still pending in the journal store
    /// down to disk — the explicit barrier callers must cross before
    /// reading journal bytes from the file while the server is live.
    /// A no-op under per-event / sync / buffered flush policies.
    ///
    /// # Errors
    ///
    /// [`WireError`] if the underlying store flush fails.
    pub fn commit_journal(&self) -> Result<(), WireError> {
        self.lock()
            .registry
            .commit()
            .map_err(|e| WireError::new(e.to_string()))
    }

    /// The server's replication role.
    pub fn role(&self) -> ServerRole {
        self.lock().role
    }

    /// Arms replication capture on the registry (leader side): journal
    /// lines appended from now on are retained until
    /// [`ActivationServer::drain_replication`] collects them.
    pub fn enable_replication(&self) {
        self.lock().registry.enable_replication();
    }

    /// Journal lines appended since the last drain — what a shard leader
    /// ships to its followers after each mutation.
    pub fn drain_replication(&self) -> Vec<String> {
        self.lock().registry.drain_replication()
    }

    /// Audit events recorded at or after index `since`, plus the next
    /// cursor — the audit half of a replication shipment (followers need
    /// the audit stream too, or a promoted leader would forget every
    /// alert its predecessor raised).
    pub fn audit_events_since(&self, since: u64) -> (Vec<AuditEvent>, u64) {
        self.lock().audit.events_since(since)
    }

    /// Applies a batch of replicated journal lines (follower side) and
    /// returns the journal length afterwards — the ack watermark.
    ///
    /// # Errors
    ///
    /// Any line that fails to parse or re-apply aborts the batch with a
    /// [`WireError`]; a diverged replica must refuse entries, not guess.
    pub fn apply_replicated(&self, lines: &[String]) -> Result<u64, WireError> {
        let mut inner = self.lock();
        for line in lines {
            inner.registry.apply_replicated(line)?;
        }
        Ok(inner.registry.journal_len())
    }

    /// Appends replicated audit events verbatim (follower side). Event
    /// seqs are renumbered to the local log's density; kind counters are
    /// *not* bumped — they already counted on the leader.
    pub fn apply_replicated_audit(&self, events: &[AuditEvent]) {
        let mut inner = self.lock();
        for e in events {
            inner.audit.replicate(e);
        }
    }

    /// Installs a leader snapshot into an empty follower (the catch-up
    /// path when the replicated journal no longer reaches back far
    /// enough) and returns the resulting watermark.
    ///
    /// # Errors
    ///
    /// [`WireError`] if this replica already holds state (snapshot
    /// install must not silently discard entries) or the snapshot is
    /// internally inconsistent.
    pub fn install_snapshot(
        &self,
        snap: RegistrySnapshot,
        audit: &[AuditEvent],
    ) -> Result<u64, WireError> {
        let mut inner = self.lock();
        if inner.registry.journal_len() != 0 || inner.registry.snapshot_events() != 0 {
            return Err(WireError::new(
                "snapshot install refused: replica already holds state".to_string(),
            ));
        }
        let registry = Registry::from_snapshot(snap).map_err(|e| WireError::new(e.to_string()))?;
        inner.registry = registry;
        for e in audit {
            inner.audit.replicate(e);
        }
        Ok(inner.registry.journal_len())
    }

    /// Promotes a follower to leader at logical tick `clock` (failover).
    /// When the whole history is in the replicated journal the registry
    /// is replay-verified first — a strict re-execution of every line
    /// must reproduce the same digest and length — then live metrics
    /// attach and the recovery counter bumps, exactly like a crash
    /// restart of a single node.
    ///
    /// # Errors
    ///
    /// [`WireError`] if the server is already a leader or the replay
    /// verification finds a diverged journal.
    pub fn promote(&self, clock: u64) -> Result<(), WireError> {
        let mut inner = self.lock();
        if inner.role == ServerRole::Leader {
            return Err(WireError::new("already the shard leader".to_string()));
        }
        if inner.registry.snapshot_events() == 0 {
            if let Some(bytes) = inner.registry.journal_bytes() {
                let text = String::from_utf8_lossy(bytes).into_owned();
                let replayed = Registry::replay(&text)?;
                if replayed.rolling_digest() != inner.registry.rolling_digest()
                    || replayed.journal_len() != inner.registry.journal_len()
                {
                    return Err(WireError::new(
                        "promotion refused: journal replay diverged".to_string(),
                    ));
                }
            }
        }
        inner.role = ServerRole::Leader;
        inner.clock = clock;
        // The new leader ships journal entries to the remaining
        // followers from its first accepted mutation on.
        inner.registry.enable_replication();
        let metrics = Arc::clone(&self.metrics);
        inner.registry.set_metrics(metrics);
        self.metrics.inc("journal_recoveries_total", &[], 1);
        hwm_trace::counter("journal_recoveries", 1);
        Ok(())
    }

    /// The registry state as a schema-v1 snapshot — what a leader ships
    /// to a follower too far behind for journal catch-up.
    pub fn state_snapshot(&self) -> RegistrySnapshot {
        let inner = self.lock();
        RegistrySnapshot {
            seq: inner.registry.journal_len(),
            digest: inner.registry.rolling_digest(),
            records: inner.registry.records().to_vec(),
            clones: inner.registry.clones().to_vec(),
        }
    }
}

impl Inner {
    /// Publishes the state gauges: all are pure functions of the accepted
    /// request sequence, so they carry [`MetricClass::Det`].
    fn refresh_gauges(&self) {
        let c = self.registry.counts();
        let m = &self.metrics;
        let awaiting = c.registered - c.unlocked - c.disabled;
        m.set_gauge("registry_ics", &[("state", "registered")], MetricClass::Det, awaiting);
        m.set_gauge("registry_ics", &[("state", "unlocked")], MetricClass::Det, c.unlocked);
        m.set_gauge("registry_ics", &[("state", "disabled")], MetricClass::Det, c.disabled);
        m.set_gauge("registry_duplicates", &[], MetricClass::Det, c.duplicates);
        m.set_gauge("service_clock_ticks", &[], MetricClass::Det, self.clock);
        m.set_gauge(
            "throttle_lockouts_total",
            &[],
            MetricClass::Det,
            self.limiter.total_lockouts(),
        );
    }

    /// Records the span tree for one traced request: a `request` root
    /// (only when this server *is* the root — a forwarded context keeps
    /// the router's root), a `handle/<op>` span, and a `journal/append`
    /// child when the registry appended. Also lands the det-class
    /// `service_request_units` observation carrying the trace id as the
    /// bucket exemplar.
    fn record_request_trace(
        &mut self,
        ctx: &TraceContext,
        req: &Request,
        op: &str,
        outcome: &str,
        now: u64,
        journal_before: u64,
    ) {
        let mut scope = TraceScope::new();
        let mut spans = Vec::new();
        let parent = if ctx.parent_span == 0 {
            let mut attrs = vec![
                ("client".to_string(), req.client().to_string()),
                ("kind".to_string(), op.to_string()),
            ];
            let ic = match req {
                Request::Register { ic, .. } | Request::RemoteDisable { ic, .. } => {
                    Some(ic.clone())
                }
                Request::Status { ic, .. } => ic.clone(),
                _ => None,
            };
            if let Some(ic) = ic {
                attrs.push(("ic".to_string(), ic));
            }
            attrs.push(("outcome".to_string(), outcome.to_string()));
            let root_id = scope.span(ctx.trace_id, 0, "request");
            spans.push(SpanRecord {
                trace_id: ctx.trace_id,
                span_id: root_id,
                parent: 0,
                name: "request".to_string(),
                node: self.node.clone(),
                tick: now,
                units: 0,
                attrs,
            });
            root_id
        } else {
            ctx.parent_span
        };
        let handle_name = format!("handle/{op}");
        let handle_id = scope.span(ctx.trace_id, parent, &handle_name);
        spans.push(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: handle_id,
            parent,
            name: handle_name,
            node: self.node.clone(),
            tick: now,
            units: 0,
            attrs: vec![("outcome".to_string(), outcome.to_string())],
        });
        let appended = self.registry.journal_len().saturating_sub(journal_before);
        if appended > 0 {
            let id = scope.span(ctx.trace_id, handle_id, "journal/append");
            spans.push(SpanRecord {
                trace_id: ctx.trace_id,
                span_id: id,
                parent: handle_id,
                name: "journal/append".to_string(),
                node: self.node.clone(),
                tick: now,
                units: appended,
                attrs: Vec::new(),
            });
        }
        let units = spans.len() as u64 + appended;
        self.metrics.observe_exemplar(
            "service_request_units",
            &[("op", op)],
            MetricClass::Det,
            REQUEST_UNITS_BOUNDS,
            units,
            ctx.trace_id,
        );
        let forwarded = ctx.parent_span != 0;
        for s in &spans {
            self.traces.push(s.clone());
        }
        if forwarded {
            self.trace_outbox.extend(spans);
        }
    }

    /// Records an audit alert and bumps its kind-labelled counter.
    fn audit_event(&mut self, tick: u64, kind: &'static str, fields: &[(&str, AuditValue)]) {
        self.metrics.inc("audit_events_total", &[("kind", kind)], 1);
        self.audit.record(tick, kind, fields);
    }

    /// On sampling ticks (`now % stride == 0`): refresh the state
    /// gauges, snapshot the registry into the ring-buffer history, and
    /// evaluate the alert rules. Transitions bump
    /// `service_alerts_total{rule,state}` and append `alert_fire` /
    /// `alert_resolve` audit events — both det-class, both pure
    /// functions of the accepted request sequence.
    fn sample_and_alert(&mut self, now: u64) {
        if !self.history.should_sample(now) {
            return;
        }
        let _span = hwm_trace::span("service.sample");
        self.refresh_gauges();
        if self.engine.rules().rules.is_empty() {
            // No rules to evaluate: walk det counters/gauges straight into
            // the history ring without materializing a snapshot. Series are
            // keyed, so ingest order differences cannot change the bytes.
            self.history.sample_registry(now, &self.metrics);
            return;
        }
        let snap = self.metrics.snapshot();
        self.history.record(now, &snap);
        for t in self.engine.evaluate(now, &self.history) {
            self.metrics.inc(
                "service_alerts_total",
                &[("rule", t.rule.as_str()), ("state", t.state.as_str())],
                1,
            );
            self.audit_event(
                now,
                t.state.audit_kind(),
                &[
                    ("rule", AuditValue::Str(t.rule.clone())),
                    ("value", AuditValue::U64(t.value)),
                    ("threshold", AuditValue::U64(t.threshold)),
                ],
            );
        }
    }

    fn status_report(&self, ic: Option<&str>) -> StatusReport {
        let c = self.registry.counts();
        StatusReport {
            registered: c.registered,
            unlocked: c.unlocked,
            disabled: c.disabled,
            duplicates: c.duplicates,
            lockouts: self.limiter.total_lockouts(),
            ic_state: ic.and_then(|ic| {
                self.registry
                    .by_ic(ic)
                    .map(|r| r.state.as_str().to_string())
            }),
        }
    }

    /// A wrong readout was submitted: count it and lock the client out
    /// past the threshold.
    fn wrong_readout(&mut self, client: &str, now: u64, code: ErrorCode, message: String) -> Response {
        hwm_trace::counter("service_wrong_readouts", 1);
        self.metrics.inc("service_wrong_readouts_total", &[], 1);
        let retry_at = self.limiter.record_failure(client, now);
        if let Some(until) = retry_at {
            // This failure crossed the threshold: a fresh lockout fired.
            let count = self.limiter.lockout_count(client);
            self.audit_event(
                now,
                "lockout",
                &[
                    ("client", AuditValue::Str(client.to_string())),
                    ("until", AuditValue::U64(until)),
                    ("count", AuditValue::U64(count as u64)),
                ],
            );
        }
        Response::Error {
            code,
            message,
            retry_at,
        }
    }

    fn register(&mut self, client: &str, ic: &str, readout: &str, now: u64) -> Response {
        let bits = match parse_readout_bits(readout) {
            Ok(bits) => bits,
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.message,
                    retry_at: None,
                }
            }
        };
        // A readout that does not decode under the blueprint cannot have
        // come from a die of this design: wrong-readout failure.
        let group = match self.designer.blueprint().parse_readout(&bits) {
            Ok((_, group)) => group,
            Err(_) => {
                return self.wrong_readout(
                    client,
                    now,
                    ErrorCode::UnknownReadout,
                    "readout does not decode to a locked state of this design".into(),
                )
            }
        };
        match self.registry.register(client, ic, readout, group) {
            Ok(()) => {
                self.limiter.record_success(client);
                Response::Registered {
                    ic: ic.to_string(),
                    total: self.registry.counts().registered,
                }
            }
            Err(RegistryError::DuplicateReadout { prior }) => {
                self.audit_event(
                    now,
                    "duplicate_readout",
                    &[
                        ("ic", AuditValue::Str(ic.to_string())),
                        ("client", AuditValue::Str(client.to_string())),
                        ("prior", AuditValue::Str(prior.clone())),
                    ],
                );
                Response::Error {
                    code: ErrorCode::DuplicateReadout,
                    message: format!("readout already registered to {prior:?} — clone suspected"),
                    retry_at: None,
                }
            }
            Err(RegistryError::DuplicateIc) => Response::Error {
                code: ErrorCode::DuplicateIc,
                message: format!("IC {ic:?} is already registered"),
                retry_at: None,
            },
            Err(e) => Response::Error {
                code: ErrorCode::Malformed,
                message: e.to_string(),
                retry_at: None,
            },
        }
    }

    fn unlock(&mut self, client: &str, readout: &str, now: u64) -> Response {
        let bits = match parse_readout_bits(readout) {
            Ok(bits) => bits,
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.message,
                    retry_at: None,
                }
            }
        };
        let (ic, state) = match self.registry.by_readout(readout) {
            Some(r) => (r.ic.clone(), r.state),
            None => {
                // Unregistered readout: either a brute-force guess or an
                // unreported (overbuilt) die — both count toward lockout.
                return self.wrong_readout(
                    client,
                    now,
                    ErrorCode::UnknownReadout,
                    "readout does not belong to any registered IC".into(),
                );
            }
        };
        match state {
            crate::registry::IcState::Registered => {}
            crate::registry::IcState::Unlocked => {
                return Response::Error {
                    code: ErrorCode::AlreadyUnlocked,
                    message: format!("{ic:?} was already issued its key"),
                    retry_at: None,
                }
            }
            crate::registry::IcState::Disabled => {
                return Response::Error {
                    code: ErrorCode::Disabled,
                    message: format!("{ic:?} was remotely disabled"),
                    retry_at: None,
                }
            }
        }
        let key = match self.designer.issue_key(&ScanReadout(bits)) {
            Ok(key) => key,
            Err(MeteringError::NoKeyExists) => {
                // A registered die stuck in a black hole: a service
                // failure, not attack evidence — but ops should hear
                // about it, so it goes to the audit stream.
                self.audit_event(
                    now,
                    "black_hole",
                    &[
                        ("ic", AuditValue::Str(ic.clone())),
                        ("client", AuditValue::Str(client.to_string())),
                    ],
                );
                return Response::Error {
                    code: ErrorCode::NoKeyExists,
                    message: format!("{ic:?} sits in a black hole; no key exists"),
                    retry_at: None,
                };
            }
            Err(e) => {
                return self.wrong_readout(
                    client,
                    now,
                    ErrorCode::UnknownReadout,
                    format!("key computation rejected the readout: {e}"),
                )
            }
        };
        if let Err(e) = self.registry.mark_unlocked(&ic, key.len(), client) {
            return Response::Error {
                code: ErrorCode::Malformed,
                message: format!("registry refused the unlock: {e}"),
                retry_at: None,
            };
        }
        self.limiter.record_success(client);
        hwm_trace::counter("service_keys_issued", 1);
        Response::Key {
            ic,
            key: key.values,
        }
    }

    fn disable(&mut self, client: &str, ic: &str, now: u64) -> Response {
        match self.registry.mark_disabled(ic, client) {
            Ok(()) => {
                self.audit_event(
                    now,
                    "remote_disable",
                    &[
                        ("ic", AuditValue::Str(ic.to_string())),
                        ("client", AuditValue::Str(client.to_string())),
                    ],
                );
                Response::Disabled {
                    ic: ic.to_string(),
                    kill: self.designer.kill_sequence(),
                }
            }
            Err(RegistryError::UnknownIc) => Response::Error {
                code: ErrorCode::UnknownIc,
                message: format!("no registered IC {ic:?}"),
                retry_at: None,
            },
            Err(RegistryError::WrongState(s)) => Response::Error {
                code: ErrorCode::Disabled,
                message: format!("{ic:?} is already {s}"),
                retry_at: None,
            },
            Err(e) => Response::Error {
                code: ErrorCode::Malformed,
                message: e.to_string(),
                retry_at: None,
            },
        }
    }

    fn status(&self, ic: Option<&str>) -> Response {
        if let Some(name) = ic {
            if self.registry.by_ic(name).is_none() {
                return Response::Error {
                    code: ErrorCode::UnknownIc,
                    message: format!("no registered IC {name:?}"),
                    retry_at: None,
                };
            }
        }
        Response::Status(self.status_report(ic))
    }
}
