//! The activation-service wire protocol: message types and framing.
//!
//! Messages are JSON objects (via `hwm-jsonio`, so integers round-trip
//! losslessly and equal values always serialize to identical bytes) carried
//! in length-prefixed frames: a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 JSON. The codec is **strict**: unknown
//! fields, missing fields and wrong types are all rejected, so a malformed
//! or hostile client cannot smuggle state past the parser — the same
//! strictness contract as the designer's lock database.
//!
//! Scan readouts travel as bit strings in the scan chain's display order
//! (most significant flip-flop first), exactly what
//! `hwm_metering::ScanReadout`'s `Bits` prints; [`parse_readout_bits`]
//! inverts that rendering.

use hwm_logic::Bits;
use hwm_trace::{SpanRecord, TraceContext};
use std::fmt;
use std::io::{self, Read, Write};

use hwm_jsonio::Json;

/// Maximum frame payload the service will read (1 MiB). Larger prefixes
/// are treated as protocol errors, which bounds a hostile client's memory
/// claim per connection.
pub const MAX_FRAME: usize = 1 << 20;

/// A protocol-level failure: bad framing or a malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    pub(crate) fn new(message: impl Into<String>) -> WireError {
        WireError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire protocol error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// A request from the foundry (or an attacker) to the designer's server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Report a fabricated IC and its locked power-up readout.
    Register {
        /// Requesting client's identity (per-client throttling key).
        client: String,
        /// The foundry's label for the die.
        ic: String,
        /// Scanned power-up state as a bit string.
        readout: String,
    },
    /// Request the unlock key for a registered IC's readout.
    Unlock {
        /// Requesting client's identity.
        client: String,
        /// Scanned power-up state as a bit string.
        readout: String,
    },
    /// Mark a registered IC disabled and fetch the kill sequence (§8).
    RemoteDisable {
        /// Requesting client's identity.
        client: String,
        /// The IC to disable.
        ic: String,
    },
    /// Query registry counts, optionally narrowed to one IC.
    Status {
        /// Requesting client's identity.
        client: String,
        /// Specific IC to report on, if any.
        ic: Option<String>,
    },
    /// Fetch a live metrics snapshot (admin plane: not throttled and does
    /// not tick the logical clock, so observability never perturbs
    /// admission decisions or the determinism contract).
    Metrics {
        /// Requesting client's identity.
        client: String,
    },
    /// Fetch audit alerts at or past a cursor (admin plane, like
    /// [`Request::Metrics`]).
    Audit {
        /// Requesting client's identity.
        client: String,
        /// Sequence cursor: return events with `seq >= since` (all events
        /// when omitted).
        since: Option<u64>,
    },
    /// Fetch the sampled time-series history (admin plane, like
    /// [`Request::Metrics`]).
    History {
        /// Requesting client's identity.
        client: String,
        /// Keep only samples within the last `window` ticks (the full
        /// retained ring when omitted).
        window: Option<u64>,
    },
    /// Fetch the node's buffered distributed-trace spans (admin plane,
    /// like [`Request::Metrics`]: unthrottled, clock-neutral — reading
    /// traces never perturbs the traced workload).
    Traces {
        /// Requesting client's identity.
        client: String,
        /// Return only the newest `limit` spans (the full ring when
        /// omitted).
        limit: Option<u64>,
    },
}

impl Request {
    /// The client identity the request carries (the throttling key).
    pub fn client(&self) -> &str {
        match self {
            Request::Register { client, .. }
            | Request::Unlock { client, .. }
            | Request::RemoteDisable { client, .. }
            | Request::Status { client, .. }
            | Request::Metrics { client }
            | Request::Audit { client, .. }
            | Request::History { client, .. }
            | Request::Traces { client, .. } => client,
        }
    }

    /// Whether this is an admin-plane (observability) request: exempt from
    /// throttling and invisible to the logical clock.
    pub fn is_admin(&self) -> bool {
        matches!(
            self,
            Request::Metrics { .. }
                | Request::Audit { .. }
                | Request::History { .. }
                | Request::Traces { .. }
        )
    }

    /// Serializes the request to a JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Register {
                client,
                ic,
                readout,
            } => Json::obj(vec![
                ("type", Json::Str("register".into())),
                ("client", Json::Str(client.clone())),
                ("ic", Json::Str(ic.clone())),
                ("readout", Json::Str(readout.clone())),
            ]),
            Request::Unlock { client, readout } => Json::obj(vec![
                ("type", Json::Str("unlock".into())),
                ("client", Json::Str(client.clone())),
                ("readout", Json::Str(readout.clone())),
            ]),
            Request::RemoteDisable { client, ic } => Json::obj(vec![
                ("type", Json::Str("remote_disable".into())),
                ("client", Json::Str(client.clone())),
                ("ic", Json::Str(ic.clone())),
            ]),
            Request::Status { client, ic } => {
                let mut fields = vec![
                    ("type", Json::Str("status".into())),
                    ("client", Json::Str(client.clone())),
                ];
                if let Some(ic) = ic {
                    fields.push(("ic", Json::Str(ic.clone())));
                }
                Json::obj(fields)
            }
            Request::Metrics { client } => Json::obj(vec![
                ("type", Json::Str("metrics".into())),
                ("client", Json::Str(client.clone())),
            ]),
            Request::Audit { client, since } => {
                let mut fields = vec![
                    ("type", Json::Str("audit".into())),
                    ("client", Json::Str(client.clone())),
                ];
                if let Some(since) = since {
                    fields.push(("since", Json::U64(*since)));
                }
                Json::obj(fields)
            }
            Request::History { client, window } => {
                let mut fields = vec![
                    ("type", Json::Str("history".into())),
                    ("client", Json::Str(client.clone())),
                ];
                if let Some(window) = window {
                    fields.push(("window", Json::U64(*window)));
                }
                Json::obj(fields)
            }
            Request::Traces { client, limit } => {
                let mut fields = vec![
                    ("type", Json::Str("traces".into())),
                    ("client", Json::Str(client.clone())),
                ];
                if let Some(limit) = limit {
                    fields.push(("limit", Json::U64(*limit)));
                }
                Json::obj(fields)
            }
        }
    }

    /// Parses a request, rejecting unknown fields and wrong types.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] naming the offending field.
    pub fn from_json(j: &Json) -> Result<Request, WireError> {
        let fields = StrictObj::new(j, "request")?;
        let kind = fields.str_field("type")?;
        let req = match kind.as_str() {
            "register" => Request::Register {
                client: fields.str_field("client")?,
                ic: fields.str_field("ic")?,
                readout: fields.str_field("readout")?,
            },
            "unlock" => Request::Unlock {
                client: fields.str_field("client")?,
                readout: fields.str_field("readout")?,
            },
            "remote_disable" => Request::RemoteDisable {
                client: fields.str_field("client")?,
                ic: fields.str_field("ic")?,
            },
            "status" => Request::Status {
                client: fields.str_field("client")?,
                ic: fields.opt_str_field("ic")?,
            },
            "metrics" => Request::Metrics {
                client: fields.str_field("client")?,
            },
            "audit" => Request::Audit {
                client: fields.str_field("client")?,
                since: fields.opt_u64_field("since")?,
            },
            "history" => Request::History {
                client: fields.str_field("client")?,
                window: fields.opt_u64_field("window")?,
            },
            "traces" => Request::Traces {
                client: fields.str_field("client")?,
                limit: fields.opt_u64_field("limit")?,
            },
            other => {
                return Err(WireError::new(format!("unknown request type {other:?}")));
            }
        };
        fields.finish()?;
        Ok(req)
    }
}

/// A [`Request`] plus the optional distributed-trace context it rides
/// with. On the wire this is the request object with one extra optional
/// `"trace"` field — a frame without it parses exactly as before, so
/// old clients keep working, and old servers never see the field from
/// old clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedRequest {
    /// The request proper.
    pub req: Request,
    /// The trace context, when the sender is propagating one.
    pub trace: Option<TraceContext>,
}

impl TracedRequest {
    /// Wraps a request with no trace context (the legacy wire form).
    pub fn untraced(req: Request) -> TracedRequest {
        TracedRequest { req, trace: None }
    }

    /// Serializes to the request's JSON object, plus the `"trace"`
    /// field when a context is attached.
    pub fn to_json(&self) -> Json {
        let mut j = self.req.to_json();
        if let (Json::Obj(fields), Some(ctx)) = (&mut j, &self.trace) {
            fields.push(("trace".into(), ctx.to_json()));
        }
        j
    }

    /// Parses a request frame, peeling off the optional `"trace"` field
    /// before the strict request parse (which still rejects every other
    /// unknown field).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] for malformed requests or contexts, and
    /// for trace contexts on admin requests — the admin plane is
    /// deliberately untraced (reading traces must not create spans).
    pub fn from_json(j: &Json) -> Result<TracedRequest, WireError> {
        let fields = match j {
            Json::Obj(fields) => fields,
            _ => return Err(WireError::new("request must be a JSON object")),
        };
        let mut trace_json = None;
        let mut kept = Vec::with_capacity(fields.len());
        for (k, v) in fields {
            // Only the first "trace" field is the context; a duplicate
            // stays behind and fails the strict request parse.
            if k == "trace" && trace_json.is_none() {
                trace_json = Some(v);
            } else {
                kept.push((k.clone(), v.clone()));
            }
        }
        let trace = match trace_json {
            Some(v) => {
                Some(TraceContext::from_json(v).map_err(|e| WireError::new(e.message))?)
            }
            None => None,
        };
        let req = Request::from_json(&Json::Obj(kept))?;
        if trace.is_some() && req.is_admin() {
            return Err(WireError::new(
                "admin requests must not carry a \"trace\" context",
            ));
        }
        Ok(TracedRequest { req, trace })
    }
}

/// Why the server refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The message did not parse or referenced an impossible value.
    Malformed,
    /// The named IC is not in the registry.
    UnknownIc,
    /// The readout does not belong to any registered IC.
    UnknownReadout,
    /// Passive-metering evidence: this readout was already registered, so
    /// one of the two dies is a clone (or the foundry double-reported).
    DuplicateReadout,
    /// An IC with this label is already registered.
    DuplicateIc,
    /// The IC was already unlocked; keys are issued exactly once per die.
    AlreadyUnlocked,
    /// The IC was remotely disabled; no further service.
    Disabled,
    /// The readout decodes to a state with no safe exit (black hole).
    NoKeyExists,
    /// Token bucket empty: retry after the indicated tick.
    Throttled,
    /// Exponential lockout is active for this client.
    LockedOut,
    /// The server is a replication follower: it only accepts journal
    /// entries shipped by its leader, never direct mutations.
    NotLeader,
}

impl ErrorCode {
    /// Wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownIc => "unknown_ic",
            ErrorCode::UnknownReadout => "unknown_readout",
            ErrorCode::DuplicateReadout => "duplicate_readout",
            ErrorCode::DuplicateIc => "duplicate_ic",
            ErrorCode::AlreadyUnlocked => "already_unlocked",
            ErrorCode::Disabled => "disabled",
            ErrorCode::NoKeyExists => "no_key_exists",
            ErrorCode::Throttled => "throttled",
            ErrorCode::LockedOut => "locked_out",
            ErrorCode::NotLeader => "not_leader",
        }
    }

    /// Parses a wire name back to the code.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "malformed" => ErrorCode::Malformed,
            "unknown_ic" => ErrorCode::UnknownIc,
            "unknown_readout" => ErrorCode::UnknownReadout,
            "duplicate_readout" => ErrorCode::DuplicateReadout,
            "duplicate_ic" => ErrorCode::DuplicateIc,
            "already_unlocked" => ErrorCode::AlreadyUnlocked,
            "disabled" => ErrorCode::Disabled,
            "no_key_exists" => ErrorCode::NoKeyExists,
            "throttled" => ErrorCode::Throttled,
            "locked_out" => ErrorCode::LockedOut,
            "not_leader" => ErrorCode::NotLeader,
            _ => return None,
        })
    }
}

/// Registry-wide counts returned by [`Request::Status`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatusReport {
    /// ICs ever registered.
    pub registered: u64,
    /// ICs currently unlocked.
    pub unlocked: u64,
    /// ICs remotely disabled.
    pub disabled: u64,
    /// Duplicate-readout registration attempts rejected (clone evidence).
    pub duplicates: u64,
    /// Client lockouts triggered so far.
    pub lockouts: u64,
    /// State of the queried IC (`"registered"` / `"unlocked"` /
    /// `"disabled"`), when the request named one.
    pub ic_state: Option<String>,
}

/// The server's answer to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Registration accepted.
    Registered {
        /// The registered IC's label.
        ic: String,
        /// Total ICs registered after this one.
        total: u64,
    },
    /// The unlock key for the submitted readout.
    Key {
        /// The IC the readout belongs to.
        ic: String,
        /// Key symbols, applied one per clock cycle.
        key: Vec<u64>,
    },
    /// The IC was marked disabled; apply this kill sequence to the part.
    Disabled {
        /// The disabled IC's label.
        ic: String,
        /// The remote-disable input sequence (§8).
        kill: Vec<u64>,
    },
    /// Registry counts.
    Status(StatusReport),
    /// A live metrics snapshot ([`Request::Metrics`]).
    Metrics {
        /// The registry snapshot, schema-versioned (`hwm-metrics`).
        snapshot: hwm_metrics::Snapshot,
    },
    /// Audit alerts at or past the requested cursor ([`Request::Audit`]).
    Audit {
        /// The matching events, in sequence order.
        events: Vec<hwm_metrics::AuditEvent>,
        /// Cursor to pass as `since` next time (= total events logged).
        next: u64,
    },
    /// The sampled time-series history ([`Request::History`]).
    History {
        /// The windowed series dump, schema-versioned (`hwm-metrics`).
        history: hwm_metrics::HistoryDump,
    },
    /// The node's buffered trace spans ([`Request::Traces`]), oldest
    /// first.
    Traces {
        /// The spans, in ring order.
        spans: Vec<SpanRecord>,
    },
    /// The request was refused.
    Error {
        /// Machine-readable refusal code.
        code: ErrorCode,
        /// Human-readable explanation.
        message: String,
        /// For throttle/lockout refusals: the logical tick at which the
        /// client may retry.
        retry_at: Option<u64>,
    },
}

impl Response {
    /// Whether this is any error response.
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }

    /// Whether this is an error response with the given code.
    pub fn has_code(&self, code: ErrorCode) -> bool {
        matches!(self, Response::Error { code: c, .. } if *c == code)
    }

    /// Serializes the response to a JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Registered { ic, total } => Json::obj(vec![
                ("type", Json::Str("registered".into())),
                ("ic", Json::Str(ic.clone())),
                ("total", Json::U64(*total)),
            ]),
            Response::Key { ic, key } => Json::obj(vec![
                ("type", Json::Str("key".into())),
                ("ic", Json::Str(ic.clone())),
                (
                    "key",
                    Json::Arr(key.iter().map(|&v| Json::U64(v)).collect()),
                ),
            ]),
            Response::Disabled { ic, kill } => Json::obj(vec![
                ("type", Json::Str("disabled".into())),
                ("ic", Json::Str(ic.clone())),
                (
                    "kill",
                    Json::Arr(kill.iter().map(|&v| Json::U64(v)).collect()),
                ),
            ]),
            Response::Status(s) => {
                let mut fields = vec![
                    ("type", Json::Str("status".into())),
                    ("registered", Json::U64(s.registered)),
                    ("unlocked", Json::U64(s.unlocked)),
                    ("disabled", Json::U64(s.disabled)),
                    ("duplicates", Json::U64(s.duplicates)),
                    ("lockouts", Json::U64(s.lockouts)),
                ];
                if let Some(state) = &s.ic_state {
                    fields.push(("ic_state", Json::Str(state.clone())));
                }
                Json::obj(fields)
            }
            Response::Metrics { snapshot } => Json::obj(vec![
                ("type", Json::Str("metrics".into())),
                ("snapshot", snapshot.to_json()),
            ]),
            Response::Audit { events, next } => Json::obj(vec![
                ("type", Json::Str("audit".into())),
                (
                    "events",
                    Json::Arr(events.iter().map(|e| e.to_json()).collect()),
                ),
                ("next", Json::U64(*next)),
            ]),
            Response::History { history } => Json::obj(vec![
                ("type", Json::Str("history".into())),
                ("history", history.to_json()),
            ]),
            Response::Traces { spans } => Json::obj(vec![
                ("type", Json::Str("traces".into())),
                (
                    "spans",
                    Json::Arr(spans.iter().map(|s| s.to_json()).collect()),
                ),
            ]),
            Response::Error {
                code,
                message,
                retry_at,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("error".into())),
                    ("code", Json::Str(code.as_str().into())),
                    ("message", Json::Str(message.clone())),
                ];
                if let Some(t) = retry_at {
                    fields.push(("retry_at", Json::U64(*t)));
                }
                Json::obj(fields)
            }
        }
    }

    /// Parses a response, rejecting unknown fields and wrong types.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] naming the offending field.
    pub fn from_json(j: &Json) -> Result<Response, WireError> {
        let fields = StrictObj::new(j, "response")?;
        let kind = fields.str_field("type")?;
        let resp = match kind.as_str() {
            "registered" => Response::Registered {
                ic: fields.str_field("ic")?,
                total: fields.u64_field("total")?,
            },
            "key" => Response::Key {
                ic: fields.str_field("ic")?,
                key: fields.u64_arr_field("key")?,
            },
            "disabled" => Response::Disabled {
                ic: fields.str_field("ic")?,
                kill: fields.u64_arr_field("kill")?,
            },
            "status" => Response::Status(StatusReport {
                registered: fields.u64_field("registered")?,
                unlocked: fields.u64_field("unlocked")?,
                disabled: fields.u64_field("disabled")?,
                duplicates: fields.u64_field("duplicates")?,
                lockouts: fields.u64_field("lockouts")?,
                ic_state: fields.opt_str_field("ic_state")?,
            }),
            "metrics" => Response::Metrics {
                snapshot: hwm_metrics::Snapshot::from_json(fields.json_field("snapshot")?)
                    .map_err(|e| WireError::new(e.message))?,
            },
            "audit" => Response::Audit {
                events: fields
                    .json_field("events")?
                    .as_arr()
                    .ok_or_else(|| WireError::new("field \"events\" must be an array"))?
                    .iter()
                    .map(|ej| hwm_metrics::AuditEvent::from_json(ej).map_err(|e| WireError::new(e.message)))
                    .collect::<Result<Vec<_>, _>>()?,
                next: fields.u64_field("next")?,
            },
            "history" => Response::History {
                history: hwm_metrics::HistoryDump::from_json(fields.json_field("history")?)
                    .map_err(|e| WireError::new(e.message))?,
            },
            "traces" => Response::Traces {
                spans: fields
                    .json_field("spans")?
                    .as_arr()
                    .ok_or_else(|| WireError::new("field \"spans\" must be an array"))?
                    .iter()
                    .map(|sj| SpanRecord::from_json(sj).map_err(|e| WireError::new(e.message)))
                    .collect::<Result<Vec<_>, _>>()?,
            },
            "error" => Response::Error {
                code: {
                    let raw = fields.str_field("code")?;
                    ErrorCode::parse(&raw)
                        .ok_or_else(|| WireError::new(format!("unknown error code {raw:?}")))?
                },
                message: fields.str_field("message")?,
                retry_at: fields.opt_u64_field("retry_at")?,
            },
            other => {
                return Err(WireError::new(format!("unknown response type {other:?}")));
            }
        };
        fields.finish()?;
        Ok(resp)
    }
}

/// Strict object reader: every field must be consumed exactly once; any
/// remaining field at [`StrictObj::finish`] is an "unknown field" error.
struct StrictObj<'a> {
    what: &'static str,
    fields: &'a [(String, Json)],
    used: std::cell::RefCell<Vec<bool>>,
}

impl<'a> StrictObj<'a> {
    fn new(j: &'a Json, what: &'static str) -> Result<StrictObj<'a>, WireError> {
        match j {
            Json::Obj(fields) => Ok(StrictObj {
                what,
                fields,
                used: std::cell::RefCell::new(vec![false; fields.len()]),
            }),
            _ => Err(WireError::new(format!("{what} must be a JSON object"))),
        }
    }

    fn take(&self, name: &str) -> Option<&'a Json> {
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if k == name && !self.used.borrow()[i] {
                self.used.borrow_mut()[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn str_field(&self, name: &'static str) -> Result<String, WireError> {
        self.take(name)
            .ok_or_else(|| WireError::new(format!("{} missing field {name:?}", self.what)))?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| WireError::new(format!("field {name:?} must be a string")))
    }

    fn opt_str_field(&self, name: &'static str) -> Result<Option<String>, WireError> {
        match self.take(name) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| WireError::new(format!("field {name:?} must be a string"))),
        }
    }

    fn json_field(&self, name: &'static str) -> Result<&'a Json, WireError> {
        self.take(name)
            .ok_or_else(|| WireError::new(format!("{} missing field {name:?}", self.what)))
    }

    fn u64_field(&self, name: &'static str) -> Result<u64, WireError> {
        self.take(name)
            .ok_or_else(|| WireError::new(format!("{} missing field {name:?}", self.what)))?
            .as_u64()
            .ok_or_else(|| WireError::new(format!("field {name:?} must be an unsigned integer")))
    }

    fn opt_u64_field(&self, name: &'static str) -> Result<Option<u64>, WireError> {
        match self.take(name) {
            None => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                WireError::new(format!("field {name:?} must be an unsigned integer"))
            }),
        }
    }

    fn u64_arr_field(&self, name: &'static str) -> Result<Vec<u64>, WireError> {
        self.take(name)
            .ok_or_else(|| WireError::new(format!("{} missing field {name:?}", self.what)))?
            .as_arr()
            .ok_or_else(|| WireError::new(format!("field {name:?} must be an array")))?
            .iter()
            .map(|v| {
                v.as_u64().ok_or_else(|| {
                    WireError::new(format!("field {name:?} must hold unsigned integers"))
                })
            })
            .collect()
    }

    fn finish(&self) -> Result<(), WireError> {
        for (i, (k, _)) in self.fields.iter().enumerate() {
            if !self.used.borrow()[i] {
                return Err(WireError::new(format!(
                    "{} has unknown field {k:?}",
                    self.what
                )));
            }
        }
        Ok(())
    }
}

/// Renders a scan readout as its wire bit string.
pub fn readout_to_bits_string(bits: &Bits) -> String {
    bits.to_string()
}

/// Parses a wire bit string back into scan-chain [`Bits`] (the inverse of
/// the `Bits` display rendering: first character is the highest index).
///
/// # Errors
///
/// Returns a [`WireError`] for empty strings or non-`0`/`1` characters.
pub fn parse_readout_bits(s: &str) -> Result<Bits, WireError> {
    if s.is_empty() {
        return Err(WireError::new("readout bit string is empty"));
    }
    if !s.bytes().all(|b| b == b'0' || b == b'1') {
        return Err(WireError::new(format!(
            "readout must be a 0/1 bit string, got {s:?}"
        )));
    }
    Ok(s.bytes().rev().map(|b| b == b'1').collect())
}

/// Reusable per-connection encode buffers: the JSON rendering and the
/// assembled frame live in caller-owned storage, so a connection's
/// steady-state frame encoding allocates nothing. One scratch serves one
/// connection (or one thread); it is deliberately cheap to construct.
#[derive(Debug, Default)]
pub struct FrameScratch {
    text: String,
    frame: Vec<u8>,
}

impl FrameScratch {
    /// A fresh scratch (empty buffers; they grow to the connection's
    /// largest frame and stay there).
    pub fn new() -> FrameScratch {
        FrameScratch::default()
    }
}

/// Encodes one length-prefixed frame into `scratch` and returns the
/// complete wire bytes (prefix + payload), valid until the next encode.
/// The byte stream is identical to [`write_frame`]'s.
///
/// # Errors
///
/// Refuses payloads above [`MAX_FRAME`].
pub fn encode_frame<'a>(scratch: &'a mut FrameScratch, payload: &Json) -> io::Result<&'a [u8]> {
    use std::fmt::Write as _;
    scratch.text.clear();
    let _ = write!(scratch.text, "{payload}");
    let bytes = scratch.text.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame payload of {} bytes exceeds MAX_FRAME", bytes.len()),
        ));
    }
    scratch.frame.clear();
    scratch.frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    scratch.frame.extend_from_slice(bytes);
    Ok(&scratch.frame)
}

/// Writes one length-prefixed frame through caller-owned scratch: the
/// prefix and payload are assembled contiguously and leave in a *single*
/// `write_all`, so a TCP peer never sees a frame split at the
/// prefix/payload boundary by the sender, and nothing is allocated per
/// frame.
///
/// # Errors
///
/// Propagates I/O failures; refuses payloads above [`MAX_FRAME`].
pub fn write_frame_with(
    scratch: &mut FrameScratch,
    w: &mut impl Write,
    payload: &Json,
) -> io::Result<()> {
    encode_frame(scratch, payload)?;
    w.write_all(&scratch.frame)?;
    w.flush()
}

/// Writes one length-prefixed frame (convenience wrapper over
/// [`write_frame_with`] with a throwaway scratch — hot paths should hold
/// a [`FrameScratch`] and call [`write_frame_with`] directly).
///
/// # Errors
///
/// Propagates I/O failures; refuses payloads above [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &Json) -> io::Result<()> {
    let mut scratch = FrameScratch::new();
    write_frame_with(&mut scratch, w, payload)
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed the connection).
///
/// # Errors
///
/// Returns an error for I/O failures, truncated frames, oversized
/// prefixes, or payloads that are not valid JSON.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame prefix of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame not UTF-8: {e}")))?;
    Json::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame not JSON: {e}")))
}

/// Incremental frame decoder for pipelined byte streams: feed raw bytes
/// in whatever chunks the transport delivers (split anywhere, including
/// mid-length-prefix) and pull complete frames out. The decoded frame
/// sequence is identical to repeated [`read_frame`] calls over the same
/// bytes — the partial-read proptest pins that equivalence.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends bytes received from the peer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete frame, or `Ok(None)` when more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// Returns an error for oversized prefixes or payloads that are not
    /// valid UTF-8 JSON (same failures as [`read_frame`]).
    pub fn next_frame(&mut self) -> io::Result<Option<Json>> {
        if self.pending() < 4 {
            self.compact();
            return Ok(None);
        }
        let len_buf: [u8; 4] = self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes");
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame prefix of {len} bytes exceeds MAX_FRAME"),
            ));
        }
        if self.pending() < 4 + len {
            self.compact();
            return Ok(None);
        }
        let start = self.pos + 4;
        let text = std::str::from_utf8(&self.buf[start..start + len]).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("frame not UTF-8: {e}"))
        })?;
        let json = Json::parse(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame not JSON: {e}")))?;
        self.pos = start + len;
        self.compact();
        Ok(Some(json))
    }

    /// Drops consumed bytes once they dominate the buffer, keeping the
    /// steady-state footprint at one in-flight frame.
    fn compact(&mut self) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let j = req.to_json();
        let back = Request::from_json(&j).expect("request parses");
        assert_eq!(&back, req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request::Register {
            client: "foundry-1".into(),
            ic: "die-7".into(),
            readout: "0101".into(),
        });
        round_trip_request(&Request::Unlock {
            client: "foundry-1".into(),
            readout: "1100".into(),
        });
        round_trip_request(&Request::RemoteDisable {
            client: "alice".into(),
            ic: "die-7".into(),
        });
        round_trip_request(&Request::Status {
            client: "alice".into(),
            ic: None,
        });
        round_trip_request(&Request::Status {
            client: "alice".into(),
            ic: Some("die-7".into()),
        });
        round_trip_request(&Request::Metrics {
            client: "ops".into(),
        });
        round_trip_request(&Request::Audit {
            client: "ops".into(),
            since: None,
        });
        round_trip_request(&Request::Audit {
            client: "ops".into(),
            since: Some(12),
        });
        round_trip_request(&Request::History {
            client: "ops".into(),
            window: None,
        });
        round_trip_request(&Request::History {
            client: "ops".into(),
            window: Some(256),
        });
        round_trip_request(&Request::Traces {
            client: "ops".into(),
            limit: None,
        });
        round_trip_request(&Request::Traces {
            client: "ops".into(),
            limit: Some(64),
        });
    }

    #[test]
    fn traced_requests_round_trip_and_old_frames_still_parse() {
        let req = Request::Unlock {
            client: "c".into(),
            readout: "0101".into(),
        };
        let traced = TracedRequest {
            req: req.clone(),
            trace: Some(TraceContext::root(2024, 9, "c", "unlock")),
        };
        let j = traced.to_json();
        assert_eq!(TracedRequest::from_json(&j).unwrap(), traced);
        // A frame without the field parses as an untraced request —
        // the legacy wire form is a strict subset.
        let old = req.to_json();
        assert_eq!(
            TracedRequest::from_json(&old).unwrap(),
            TracedRequest::untraced(req.clone())
        );
        // And the context never confuses the plain request parser's
        // strictness: the traced form is rejected by Request::from_json.
        assert!(Request::from_json(&j).is_err());
    }

    #[test]
    fn traced_request_tampering_is_rejected() {
        let req = Request::Unlock {
            client: "c".into(),
            readout: "01".into(),
        };
        // Unknown field inside the trace context.
        let mut j = req.to_json();
        if let Json::Obj(fields) = &mut j {
            fields.push((
                "trace".into(),
                Json::obj(vec![
                    ("trace_id", Json::U64(1)),
                    ("parent_span", Json::U64(0)),
                    ("tick", Json::U64(3)),
                    ("smuggled", Json::U64(9)),
                ]),
            ));
        }
        let err = TracedRequest::from_json(&j).unwrap_err();
        assert!(err.message.contains("unknown field"), "{err}");
        // Wrong type for the whole context.
        let mut j = req.to_json();
        if let Json::Obj(fields) = &mut j {
            fields.push(("trace".into(), Json::U64(7)));
        }
        assert!(TracedRequest::from_json(&j).is_err());
        // A second "trace" field is an unknown field, not a silent
        // overwrite.
        let traced = TracedRequest {
            req: req.clone(),
            trace: Some(TraceContext::root(1, 2, "c", "unlock")),
        };
        let mut j = traced.to_json();
        if let Json::Obj(fields) = &mut j {
            let dup = fields.last().unwrap().clone();
            fields.push(dup);
        }
        let err = TracedRequest::from_json(&j).unwrap_err();
        assert!(err.message.contains("unknown field"), "{err}");
        // The admin plane is deliberately untraced.
        let admin = TracedRequest {
            req: Request::Traces {
                client: "ops".into(),
                limit: None,
            },
            trace: Some(TraceContext::root(1, 2, "ops", "traces")),
        };
        let err = TracedRequest::from_json(&admin.to_json()).unwrap_err();
        assert!(err.message.contains("admin"), "{err}");
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Registered {
                ic: "die-7".into(),
                total: 3,
            },
            Response::Key {
                ic: "die-7".into(),
                key: vec![0, 7, u64::MAX],
            },
            Response::Disabled {
                ic: "die-7".into(),
                kill: vec![1, 2, 3],
            },
            Response::Status(StatusReport {
                registered: 5,
                unlocked: 4,
                disabled: 1,
                duplicates: 2,
                lockouts: 1,
                ic_state: Some("unlocked".into()),
            }),
            Response::Error {
                code: ErrorCode::LockedOut,
                message: "too many wrong readouts".into(),
                retry_at: Some(99),
            },
            Response::Metrics {
                snapshot: {
                    let m = hwm_metrics::MetricsRegistry::default();
                    m.inc("service_requests_total", &[("op", "unlock"), ("outcome", "key")], 3);
                    m.snapshot()
                },
            },
            Response::Audit {
                events: {
                    let mut log = hwm_metrics::AuditLog::new();
                    log.record(
                        4,
                        "duplicate_readout",
                        &[("ic", hwm_metrics::AuditValue::Str("die-7".into()))],
                    );
                    log.into_events()
                },
                next: 1,
            },
            Response::Traces {
                spans: vec![SpanRecord {
                    trace_id: 7,
                    span_id: 9,
                    parent: 0,
                    name: "request".into(),
                    node: "server".into(),
                    tick: 4,
                    units: 1,
                    attrs: vec![("client".into(), "c".into())],
                }],
            },
            Response::History {
                history: {
                    let m = hwm_metrics::MetricsRegistry::default();
                    let mut h = hwm_metrics::History::new(hwm_metrics::HistoryConfig::default());
                    m.inc("service_requests_total", &[("op", "unlock"), ("outcome", "key")], 3);
                    h.record(4, &m.snapshot());
                    m.inc("service_requests_total", &[("op", "unlock"), ("outcome", "key")], 2);
                    h.record(8, &m.snapshot());
                    h.dump(None)
                },
            },
        ] {
            let j = resp.to_json();
            assert_eq!(Response::from_json(&j).expect("parses"), resp);
        }
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let mut j = Request::Status {
            client: "c".into(),
            ic: None,
        }
        .to_json();
        if let Json::Obj(fields) = &mut j {
            fields.push(("extra".into(), Json::U64(1)));
        }
        let err = Request::from_json(&j).unwrap_err();
        assert!(err.message.contains("unknown field"), "{err}");
    }

    #[test]
    fn wrong_types_are_rejected() {
        let j = Json::obj(vec![
            ("type", Json::Str("unlock".into())),
            ("client", Json::U64(7)),
            ("readout", Json::Str("01".into())),
        ]);
        let err = Request::from_json(&j).unwrap_err();
        assert!(err.message.contains("client"), "{err}");
    }

    #[test]
    fn readout_bit_strings_invert_display() {
        let bits = Bits::from_u64(0b1011, 6);
        let s = readout_to_bits_string(&bits);
        assert_eq!(s, "001011");
        assert_eq!(parse_readout_bits(&s).unwrap(), bits);
        assert!(parse_readout_bits("").is_err());
        assert!(parse_readout_bits("01x1").is_err());
    }

    #[test]
    fn frames_round_trip_and_bound_size() {
        let req = Request::Unlock {
            client: "c".into(),
            readout: "0101".into(),
        };
        // Encode through caller-owned scratch (the hot-path form).
        let mut scratch = FrameScratch::new();
        let mut buf = Vec::new();
        write_frame_with(&mut scratch, &mut buf, &req.to_json()).unwrap();
        let mut cursor = std::io::Cursor::new(&buf);
        let j = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(Request::from_json(&j).unwrap(), req);
        // Clean EOF after the frame.
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
        // Oversized prefix is refused without allocating.
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        assert!(read_frame(&mut std::io::Cursor::new(&huge[..])).is_err());
        // Truncated payload is an error, not a clean EOF.
        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - 2);
        assert!(read_frame(&mut std::io::Cursor::new(&truncated[..])).is_err());
    }

    #[test]
    fn scratch_encoder_matches_write_frame_bytes() {
        let mut scratch = FrameScratch::new();
        for resp in [
            Response::Registered { ic: "die-1".into(), total: 1 },
            Response::Key { ic: "die-2".into(), key: vec![1, 2, 3] },
            Response::Error {
                code: ErrorCode::Throttled,
                message: "later \"quoted\" text\n".into(),
                retry_at: Some(8),
            },
        ] {
            let j = resp.to_json();
            let mut legacy = Vec::new();
            write_frame(&mut legacy, &j).unwrap();
            let encoded = encode_frame(&mut scratch, &j).unwrap();
            assert_eq!(encoded, &legacy[..], "scratch reuse must not change bytes");
        }
    }

    #[test]
    fn frame_decoder_handles_arbitrary_splits() {
        let reqs: Vec<Json> = (0..5)
            .map(|i| {
                Request::Unlock {
                    client: format!("c{i}"),
                    readout: "0101".into(),
                }
                .to_json()
            })
            .collect();
        let mut stream = Vec::new();
        for j in &reqs {
            write_frame(&mut stream, j).unwrap();
        }
        // Feed one byte at a time — every boundary, including
        // mid-length-prefix, is exercised.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            dec.extend(&[b]);
            while let Some(j) = dec.next_frame().unwrap() {
                got.push(j);
            }
        }
        assert_eq!(got, reqs);
        assert_eq!(dec.pending(), 0);
        // An oversized prefix still errors.
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(dec.next_frame().is_err());
    }
}
