//! The IC-activation service: the paper's metering protocol as a server.
//!
//! The offline crates reproduce the *mechanics* of hardware metering —
//! BFSM locking, key computation, attacks. This crate reproduces its
//! *operation*: the designer (Alice) runs an activation service, fabs and
//! test facilities connect to it, and every interaction of Figure 2
//! becomes a request:
//!
//! * `register` — the foundry reports a fabricated IC's power-up readout
//!   (passive metering: duplicate readouts expose cloned dies);
//! * `unlock` — a readout comes back and the designer answers with the
//!   unlock key (active metering: one key per reported die, royalties
//!   counted);
//! * `remote_disable` — the designer revokes a die with the §8 kill
//!   sequence;
//! * `status` — registry counts and per-IC state.
//!
//! Layering:
//!
//! * [`wire`] — message types, a strict hand-rolled JSON codec (unknown
//!   fields rejected), and 4-byte length-prefixed framing;
//! * [`registry`] — the persistent IC registry: a write-ahead JSONL
//!   journal replayed on startup, with duplicate-readout detection,
//!   atomic snapshot + compaction, and torn-tail crash recovery;
//! * [`storage`] / [`snapshot`] — the journal store shim (with the
//!   [`storage::FlushPolicy`] durability knob) and the schema-v1
//!   snapshot format;
//! * [`fault`] — seeded, tick-driven fault injection (torn writes,
//!   disk-full, short reads, dropped connections, delayed accepts) for
//!   the crash simulation;
//! * [`throttle`] — per-client token bucket plus exponential lockout on
//!   wrong readouts, driven by a logical clock (one tick per request) so
//!   admission decisions are deterministic;
//! * [`server`] — the handler core tying designer + registry + limiter
//!   together behind one mutex;
//! * [`transport`] — an in-process client (deterministic, still goes
//!   through the real codec) and a TCP front end (thread per connection).
//!
//! The serving benchmark lives in `hwm-bench` (`serve_bench`); the online
//! brute-force analysis lives in `hwm-attacks` (`online`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod registry;
pub mod server;
pub mod snapshot;
pub mod storage;
pub mod throttle;
pub mod transport;
pub mod wire;

pub use fault::{ArmedFault, FaultInjector, FaultKind, FaultPlan};
pub use registry::{
    CloneEvidence, IcRecord, IcState, RecoverError, RecoverOptions, Registry, RegistryCounts,
    RegistryError, TornTail,
};
pub use server::{ActivationServer, ServerConfig, ServerRole};
pub use snapshot::{snapshot_path, RegistrySnapshot};
pub use storage::FlushPolicy;
pub use throttle::{Decision, RateLimiter, ThrottleConfig};
pub use transport::{Client, Handler, LocalClient, TcpClient, TcpFaults, TcpServer};
pub use wire::{
    read_frame, write_frame, ErrorCode, Request, Response, StatusReport, TracedRequest, WireError,
};
