//! Registry snapshots (schema v1): the compaction checkpoint format.
//!
//! A snapshot captures the registry's full recoverable state — every
//! record, every piece of clone evidence, the journal sequence number and
//! the rolling journal digest — in one JSON document. Compaction writes
//! `snapshot.json` next to the journal via temp-file + rename (atomic on
//! POSIX), then truncates the journal; recovery loads the snapshot and
//! replays only the journal tail (`seq > snapshot.seq`). A crash between
//! the two renames is safe: tail lines at or below `snapshot.seq` are
//! recognized and skipped.
//!
//! Schema v1, one document:
//!
//! ```text
//! {"schema":1,"seq":12,"digest":9119796695514773374,
//!  "records":[{"ic":"ic-0","client":"fab","readout":"0101","group":2,"state":"unlocked","seq":1}],
//!  "clones":[{"seq":3,"ic":"ic-2","client":"fab","prior":"ic-0"}]}
//! ```
//!
//! `digest` is the rolling FNV-1a digest of every journal byte ever
//! appended (including compacted-away history), so "journal digest" stays
//! comparable across compactions — the recovered digest equals the digest
//! of the full uncompacted journal an oracle run would have produced.
//! Keys are never snapshotted, for the same reason they are never
//! journaled.
//!
//! Parsing is strict in the same spirit as the wire layer: unknown
//! fields, missing fields, or a wrong `schema` are hard errors — a
//! snapshot is trusted state, and silently ignoring what we do not
//! understand would corrupt recovery.

use crate::registry::{CloneEvidence, IcRecord, IcState};
use hwm_jsonio::Json;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Snapshot schema version this build reads and writes.
pub const SNAPSHOT_SCHEMA: u64 = 1;

/// The snapshot document: everything recovery needs besides the journal
/// tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Journal sequence number the snapshot covers (events with
    /// `seq <= seq` are folded in).
    pub seq: u64,
    /// Rolling FNV-1a digest of all journal bytes through `seq`.
    pub digest: u64,
    /// All records, in registration order.
    pub records: Vec<IcRecord>,
    /// Duplicate-readout evidence, in journal order.
    pub clones: Vec<CloneEvidence>,
}

/// Conventional snapshot path for a journal at `journal_path`:
/// `snapshot.json` in the same directory.
pub fn snapshot_path(journal_path: &Path) -> PathBuf {
    journal_path
        .parent()
        .unwrap_or_else(|| Path::new("."))
        .join("snapshot.json")
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn obj_fields<'a>(j: &'a Json, what: &str, allowed: &[&str]) -> io::Result<&'a [(String, Json)]> {
    let Json::Obj(fields) = j else {
        return Err(invalid(format!("snapshot {what} is not an object")));
    };
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            return Err(invalid(format!("snapshot {what} has unknown field {k:?}")));
        }
    }
    Ok(fields)
}

fn u64_field(j: &Json, what: &str, name: &str) -> io::Result<u64> {
    j.get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| invalid(format!("snapshot {what} missing {name}")))
}

fn str_field(j: &Json, what: &str, name: &str) -> io::Result<String> {
    j.get(name)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| invalid(format!("snapshot {what} missing {name}")))
}

impl RegistrySnapshot {
    /// Serializes to the schema-v1 JSON document (single line, no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let records = self
            .records
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("ic", Json::Str(r.ic.clone())),
                    ("client", Json::Str(r.client.clone())),
                    ("readout", Json::Str(r.readout.clone())),
                    ("group", Json::U64(r.group as u64)),
                    ("state", Json::Str(r.state.as_str().to_string())),
                    ("seq", Json::U64(r.seq)),
                ])
            })
            .collect();
        let clones = self
            .clones
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("seq", Json::U64(c.seq)),
                    ("ic", Json::Str(c.ic.clone())),
                    ("client", Json::Str(c.client.clone())),
                    ("prior", Json::Str(c.prior.clone())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::U64(SNAPSHOT_SCHEMA)),
            ("seq", Json::U64(self.seq)),
            ("digest", Json::U64(self.digest)),
            ("records", Json::Arr(records)),
            ("clones", Json::Arr(clones)),
        ])
        .to_string()
    }

    /// Parses and validates a schema-v1 document.
    ///
    /// # Errors
    ///
    /// `InvalidData` for anything that is not exactly a well-formed v1
    /// snapshot: bad JSON, wrong schema number, missing or unknown
    /// fields, an unknown state name, or internally inconsistent
    /// sequence numbers.
    pub fn from_json(text: &str) -> io::Result<RegistrySnapshot> {
        let j = Json::parse(text).map_err(|e| invalid(format!("snapshot is not JSON: {e}")))?;
        obj_fields(&j, "document", &["schema", "seq", "digest", "records", "clones"])?;
        let schema = u64_field(&j, "document", "schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(invalid(format!(
                "snapshot schema {schema} unsupported (expected {SNAPSHOT_SCHEMA})"
            )));
        }
        let seq = u64_field(&j, "document", "seq")?;
        let digest = u64_field(&j, "document", "digest")?;
        let records_json = j
            .get("records")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("snapshot missing records array"))?;
        let mut records = Vec::with_capacity(records_json.len());
        for (i, r) in records_json.iter().enumerate() {
            let what = format!("record {i}");
            obj_fields(r, &what, &["ic", "client", "readout", "group", "state", "seq"])?;
            let state_name = str_field(r, &what, "state")?;
            let state = IcState::parse(&state_name)
                .ok_or_else(|| invalid(format!("snapshot {what} has unknown state {state_name:?}")))?;
            let record_seq = u64_field(r, &what, "seq")?;
            if record_seq == 0 || record_seq > seq {
                return Err(invalid(format!(
                    "snapshot {what} seq {record_seq} outside journal range 1..={seq}"
                )));
            }
            records.push(IcRecord {
                ic: str_field(r, &what, "ic")?,
                client: str_field(r, &what, "client")?,
                readout: str_field(r, &what, "readout")?,
                group: u64_field(r, &what, "group")? as u8,
                state,
                seq: record_seq,
            });
        }
        let clones_json = j
            .get("clones")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("snapshot missing clones array"))?;
        let mut clones = Vec::with_capacity(clones_json.len());
        for (i, c) in clones_json.iter().enumerate() {
            let what = format!("clone {i}");
            obj_fields(c, &what, &["seq", "ic", "client", "prior"])?;
            let clone_seq = u64_field(c, &what, "seq")?;
            if clone_seq == 0 || clone_seq > seq {
                return Err(invalid(format!(
                    "snapshot {what} seq {clone_seq} outside journal range 1..={seq}"
                )));
            }
            clones.push(CloneEvidence {
                seq: clone_seq,
                ic: str_field(c, &what, "ic")?,
                client: str_field(c, &what, "client")?,
                prior: str_field(c, &what, "prior")?,
            });
        }
        Ok(RegistrySnapshot {
            seq,
            digest,
            records,
            clones,
        })
    }

    /// Writes the snapshot atomically: serialize to `<path>.tmp`, fsync,
    /// rename over `path`, then best-effort fsync the directory so the
    /// rename itself is durable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on failure the previous snapshot (if any)
    /// is untouched.
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            // Directory fsync makes the rename durable; not all
            // platforms support opening a directory, so best effort.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Loads the snapshot at `path`; `Ok(None)` when none exists.
    ///
    /// # Errors
    ///
    /// `InvalidData` for a corrupt snapshot (see
    /// [`RegistrySnapshot::from_json`]), other I/O errors verbatim.
    pub fn load(path: &Path) -> io::Result<Option<RegistrySnapshot>> {
        match std::fs::read_to_string(path) {
            Ok(text) => RegistrySnapshot::from_json(text.trim_end_matches('\n'))
                .map(Some)
                .map_err(|e| invalid(format!("corrupt snapshot {}: {e}", path.display()))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RegistrySnapshot {
        RegistrySnapshot {
            seq: 5,
            digest: 0xdead_beef,
            records: vec![IcRecord {
                ic: "ic-0".into(),
                client: "fab".into(),
                readout: "0101".into(),
                group: 2,
                state: IcState::Unlocked,
                seq: 1,
            }],
            clones: vec![CloneEvidence {
                seq: 3,
                ic: "ic-2".into(),
                client: "fab".into(),
                prior: "ic-0".into(),
            }],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let s = sample();
        let text = s.to_json();
        assert!(text.starts_with("{\"schema\":1,\"seq\":5,\"digest\":"), "{text}");
        assert_eq!(RegistrySnapshot::from_json(&text).unwrap(), s);
    }

    #[test]
    fn strict_parsing_rejects_drift() {
        let good = sample().to_json();
        for (mutate, needle) in [
            (good.replace("\"schema\":1", "\"schema\":2"), "schema 2"),
            (good.replace("\"digest\":", "\"digset\":"), "unknown field"),
            (good.replace("\"state\":\"unlocked\"", "\"state\":\"molten\""), "unknown state"),
            (good.replace("\"seq\":3,\"ic\":\"ic-2\"", "\"seq\":9,\"ic\":\"ic-2\""), "outside journal range"),
            ("nope".to_string(), "not JSON"),
        ] {
            let err = RegistrySnapshot::from_json(&mutate).unwrap_err();
            assert!(err.to_string().contains(needle), "{mutate} -> {err}");
        }
    }

    #[test]
    fn atomic_write_and_load() {
        let dir = std::env::temp_dir().join(format!("hwm-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.jsonl");
        let path = snapshot_path(&journal);
        let _ = std::fs::remove_file(&path);
        assert_eq!(RegistrySnapshot::load(&path).unwrap(), None);
        let s = sample();
        s.write_atomic(&path).unwrap();
        assert_eq!(RegistrySnapshot::load(&path).unwrap(), Some(s.clone()));
        // Overwrite is atomic: a second snapshot fully replaces the first.
        let mut s2 = s;
        s2.seq = 7;
        s2.write_atomic(&path).unwrap();
        assert_eq!(RegistrySnapshot::load(&path).unwrap().unwrap().seq, 7);
        assert!(!path.with_extension("json.tmp").exists(), "tmp file cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
