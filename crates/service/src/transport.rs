//! Transports: how requests reach the [`ActivationServer`].
//!
//! Two transports speak the same framed protocol ([`crate::wire`]):
//!
//! * [`LocalClient`] — in-process. Every request and response still round-
//!   trips through the real frame codec (length prefix, JSON encode,
//!   strict decode), so protocol bugs cannot hide behind direct calls,
//!   but there are no sockets and no scheduler: a fixed request sequence
//!   produces a byte-identical registry journal on every run. This is the
//!   transport the deterministic benchmarks and tests use.
//! * [`TcpServer`] / [`TcpClient`] — real sockets, one handler thread per
//!   connection (handlers serialize on the server mutex; concurrency
//!   covers framing and I/O). Journal ordering across *concurrent* TCP
//!   clients follows mutex acquisition order and is therefore not
//!   deterministic — documented in DESIGN.md.
//!
//! Both transports accept an optional fault layer for the crash
//! simulation. Injected transport faults (short reads, connection drops,
//! delayed accepts) always strike **before dispatch**: the request is
//! lost, the server state is untouched, and the client's retry after
//! reconnect/restart is exact — the property the simulation's oracle
//! comparison relies on. (Storage faults, which strike *after* dispatch
//! but before the mutation commits, live in [`crate::fault::FaultyStore`].)

use crate::fault::{ArmedFault, FaultInjector, FaultKind, FaultPlan};
use crate::server::ActivationServer;
use crate::wire::{read_frame, write_frame, ErrorCode, Request, Response, TracedRequest, WireError};
use hwm_trace::TraceContext;
use std::io;
use std::io::Read;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A client able to submit requests and receive responses.
pub trait Client {
    /// Submits one request, blocking for the response.
    fn call(&mut self, req: &Request) -> Result<Response, WireError>;

    /// Arms a trace context for the *next* call only: that request is
    /// sent as a [`TracedRequest`] envelope, after which the client
    /// reverts to untraced frames. Default is a no-op so transports
    /// without tracing support keep compiling.
    fn set_trace(&mut self, _ctx: TraceContext) {}
}

/// Anything that can answer a wire request: a single
/// [`ActivationServer`], or a cluster router fronting many of them.
/// Both transports dispatch through this, so the cluster reuses the
/// frame codec, the fault layer and the TCP front end unchanged.
pub trait Handler: Send + Sync {
    /// Handles one decoded request.
    fn handle(&self, req: &Request) -> Response;

    /// Handles one decoded request carrying an optional trace context.
    /// The default drops the context so handlers that predate tracing
    /// keep working; tracing-aware handlers override this.
    fn handle_traced(&self, req: &Request, _trace: Option<&TraceContext>) -> Response {
        self.handle(req)
    }
}

impl Handler for ActivationServer {
    fn handle(&self, req: &Request) -> Response {
        ActivationServer::handle(self, req)
    }

    fn handle_traced(&self, req: &Request, trace: Option<&TraceContext>) -> Response {
        ActivationServer::handle_traced(self, req, trace)
    }
}

/// In-process transport: frames each request into a buffer, decodes it
/// back, dispatches, and frames the response the same way.
pub struct LocalClient<H: Handler = ActivationServer> {
    server: Arc<H>,
    faults: Option<FaultInjector>,
    trace: Option<TraceContext>,
}

impl<H: Handler> LocalClient<H> {
    /// A client bound to the given server.
    pub fn new(server: Arc<H>) -> LocalClient<H> {
        LocalClient {
            server,
            faults: None,
            trace: None,
        }
    }

    /// A client that consumes transport faults armed on `injector`
    /// (crash simulation only): an armed short read truncates the
    /// request frame in flight, an armed connection drop loses it
    /// entirely — in both cases before the server sees it.
    pub fn with_faults(server: Arc<H>, injector: FaultInjector) -> LocalClient<H> {
        LocalClient {
            server,
            faults: Some(injector),
            trace: None,
        }
    }

    /// The server this client dispatches into.
    pub fn server(&self) -> &Arc<H> {
        &self.server
    }
}

fn io_err(context: &str, e: io::Error) -> WireError {
    WireError::new(format!("{context}: {e}"))
}

impl<H: Handler> Client for LocalClient<H> {
    fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        // Encode the request through the real codec — as a traced
        // envelope when a context is armed, as a bare request otherwise,
        // so untraced traffic stays byte-identical to the old protocol.
        let traced = TracedRequest {
            req: req.clone(),
            trace: self.trace.take(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &traced.to_json()).map_err(|e| io_err("encode request", e))?;
        // An armed transport fault strikes the request in flight — the
        // server never sees it. Storage faults pass through (the journal
        // store consumes those after dispatch).
        if let Some(injector) = &self.faults {
            match injector.take() {
                Some(ArmedFault::ConnDrop) => {
                    return Err(WireError::new(
                        "injected connection drop: request frame lost in flight",
                    ));
                }
                Some(ArmedFault::ShortRead { salt }) => {
                    // Deliver only a prefix of the frame; the codec must
                    // reject the truncation.
                    let keep = (salt % buf.len().max(1) as u64) as usize;
                    buf.truncate(keep);
                    let short = read_frame(&mut buf.as_slice())
                        .map_err(|e| io_err("decode request", e))?;
                    return match short {
                        None => Err(WireError::new("injected short read: request frame truncated")),
                        Some(_) => Err(WireError::new(
                            "injected short read left a whole frame — codec bug",
                        )),
                    };
                }
                Some(other) => injector.arm(other),
                None => {}
            }
        }
        let decoded = read_frame(&mut buf.as_slice())
            .map_err(|e| io_err("decode request", e))?
            .ok_or_else(|| WireError::new("request frame truncated"))?;
        let traced = TracedRequest::from_json(&decoded)?;
        // ...dispatch, then round-trip the response too.
        let resp = self
            .server
            .handle_traced(&traced.req, traced.trace.as_ref());
        let mut buf = Vec::new();
        write_frame(&mut buf, &resp.to_json()).map_err(|e| io_err("encode response", e))?;
        let decoded = read_frame(&mut buf.as_slice())
            .map_err(|e| io_err("decode response", e))?
            .ok_or_else(|| WireError::new("response frame truncated"))?;
        Response::from_json(&decoded)
    }

    fn set_trace(&mut self, ctx: TraceContext) {
        self.trace = Some(ctx);
    }
}

/// How long the accept loop sleeps between polls of the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Deterministically scheduled TCP faults (crash simulation): the plan's
/// ticks index accepted connections (delayed accepts) or received frames
/// (short reads / connection drops).
pub struct TcpFaults {
    plan: FaultPlan,
    conns: AtomicU64,
    frames: AtomicU64,
}

impl TcpFaults {
    /// Faults following `plan`.
    pub fn new(plan: FaultPlan) -> Arc<TcpFaults> {
        Arc::new(TcpFaults {
            plan,
            conns: AtomicU64::new(0),
            frames: AtomicU64::new(0),
        })
    }
}

/// A running TCP front end: nonblocking accept loop plus one handler
/// thread per accepted connection.
pub struct TcpServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// One clone per live connection, so shutdown can unblock handlers
    /// parked in `read_frame` (see `stop`).
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving.
    pub fn spawn<H: Handler + 'static>(
        addr: impl ToSocketAddrs,
        server: Arc<H>,
    ) -> io::Result<TcpServer> {
        TcpServer::spawn_inner(addr, server, None)
    }

    /// Binds `addr` and serves with a deterministic fault schedule
    /// (crash simulation only).
    pub fn spawn_with_faults<H: Handler + 'static>(
        addr: impl ToSocketAddrs,
        server: Arc<H>,
        faults: Arc<TcpFaults>,
    ) -> io::Result<TcpServer> {
        TcpServer::spawn_inner(addr, server, Some(faults))
    }

    fn spawn_inner<H: Handler + 'static>(
        addr: impl ToSocketAddrs,
        server: Arc<H>,
        faults: Option<Arc<TcpFaults>>,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let conns = Arc::new(Mutex::new(Vec::new()));
        let conn_registry = Arc::clone(&conns);
        let base = hwm_trace::current_path();
        let accept_thread = std::thread::spawn(move || {
            let _scope = hwm_trace::thread_scope(&base);
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if let Some(f) = &faults {
                            let conn = f.conns.fetch_add(1, Ordering::SeqCst);
                            if f.plan.kind == FaultKind::DelayedAccept && f.plan.is_crash(conn) {
                                std::thread::sleep(Duration::from_millis(
                                    f.plan.accept_delay_ms(conn),
                                ));
                            }
                        }
                        // Frames are tiny request/response pairs; Nagle +
                        // delayed ACK would stall each round trip ~40ms.
                        let _ = stream.set_nodelay(true);
                        if let Ok(clone) = stream.try_clone() {
                            conn_registry
                                .lock()
                                .expect("connection registry poisoned")
                                .push(clone);
                        }
                        let server = Arc::clone(&server);
                        let faults = faults.clone();
                        let base = hwm_trace::current_path();
                        handlers.push(std::thread::spawn(move || {
                            let _scope = hwm_trace::thread_scope(&base);
                            serve_connection(stream, server.as_ref(), faults.as_deref());
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(TcpServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the accept loop (which in turn joins
    /// every connection handler).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Handlers block in read_frame until their peer hangs up; shut
        // the sockets down so those reads return and the joins below
        // cannot hang on an idle connection.
        if let Ok(conns) = self.conns.lock() {
            for stream in conns.iter() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serves one connection until EOF or I/O error. A frame that decodes as
/// JSON but not as a request gets a `malformed` error response; the
/// connection stays open (the client may recover). Broken frames tear the
/// connection down. An injected fault loses the incoming request —
/// short-read tears it mid-frame, conn-drop discards it whole — and
/// closes the connection before anything is dispatched.
fn serve_connection<H: Handler>(mut stream: TcpStream, server: &H, faults: Option<&TcpFaults>) {
    loop {
        if let Some(f) = faults {
            let frame = f.frames.fetch_add(1, Ordering::SeqCst);
            if f.plan.is_crash(frame) {
                match f.plan.kind {
                    FaultKind::ShortRead => {
                        // Read part of the length prefix, then hang up:
                        // the frame died mid-wire.
                        let mut partial = [0u8; 2];
                        let _ = stream.read(&mut partial);
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                    FaultKind::ConnDrop => {
                        // Receive the whole frame, then drop it on the
                        // floor and hang up — never dispatched.
                        let _ = read_frame(&mut stream);
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                    // Storage and accept faults are handled elsewhere.
                    _ => {}
                }
            }
        }
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(_) => return,
        };
        let resp = match TracedRequest::from_json(&payload) {
            Ok(traced) => server.handle_traced(&traced.req, traced.trace.as_ref()),
            Err(e) => Response::Error {
                code: ErrorCode::Malformed,
                message: e.message,
                retry_at: None,
            },
        };
        if write_frame(&mut stream, &resp.to_json()).is_err() {
            return;
        }
    }
}

/// A blocking TCP client speaking the framed protocol.
pub struct TcpClient {
    stream: TcpStream,
    trace: Option<TraceContext>,
}

impl TcpClient {
    /// Connects to a [`TcpServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            stream,
            trace: None,
        })
    }
}

impl Client for TcpClient {
    fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        let traced = TracedRequest {
            req: req.clone(),
            trace: self.trace.take(),
        };
        write_frame(&mut self.stream, &traced.to_json()).map_err(|e| io_err("send request", e))?;
        match read_frame(&mut self.stream).map_err(|e| io_err("read response", e))? {
            Some(payload) => Response::from_json(&payload),
            None => Err(WireError::new("server closed the connection")),
        }
    }

    fn set_trace(&mut self, ctx: TraceContext) {
        self.trace = Some(ctx);
    }
}
