//! Transports: how requests reach the [`ActivationServer`].
//!
//! Two transports speak the same framed protocol ([`crate::wire`]):
//!
//! * [`LocalClient`] — in-process. Every request and response still round-
//!   trips through the real frame codec (length prefix, JSON encode,
//!   strict decode), so protocol bugs cannot hide behind direct calls,
//!   but there are no sockets and no scheduler: a fixed request sequence
//!   produces a byte-identical registry journal on every run. This is the
//!   transport the deterministic benchmarks and tests use.
//! * [`TcpServer`] / [`TcpClient`] — real sockets, one handler thread per
//!   connection (handlers serialize on the server mutex; concurrency
//!   covers framing and I/O). Journal ordering across *concurrent* TCP
//!   clients follows mutex acquisition order and is therefore not
//!   deterministic — documented in DESIGN.md.
//!
//! Both transports accept an optional fault layer for the crash
//! simulation. Injected transport faults (short reads, connection drops,
//! delayed accepts) always strike **before dispatch**: the request is
//! lost, the server state is untouched, and the client's retry after
//! reconnect/restart is exact — the property the simulation's oracle
//! comparison relies on. (Storage faults, which strike *after* dispatch
//! but before the mutation commits, live in [`crate::fault::FaultyStore`].)

use crate::fault::{ArmedFault, FaultInjector, FaultKind, FaultPlan};
use crate::server::ActivationServer;
use crate::wire::{
    encode_frame, read_frame, write_frame_with, ErrorCode, FrameDecoder, FrameScratch, Request,
    Response, TracedRequest, WireError,
};
use hwm_trace::TraceContext;
use std::io;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A client able to submit requests and receive responses.
pub trait Client {
    /// Submits one request, blocking for the response.
    fn call(&mut self, req: &Request) -> Result<Response, WireError>;

    /// Arms a trace context for the *next* call only: that request is
    /// sent as a [`TracedRequest`] envelope, after which the client
    /// reverts to untraced frames. Default is a no-op so transports
    /// without tracing support keep compiling.
    fn set_trace(&mut self, _ctx: TraceContext) {}
}

/// Anything that can answer a wire request: a single
/// [`ActivationServer`], or a cluster router fronting many of them.
/// Both transports dispatch through this, so the cluster reuses the
/// frame codec, the fault layer and the TCP front end unchanged.
pub trait Handler: Send + Sync {
    /// Handles one decoded request.
    fn handle(&self, req: &Request) -> Response;

    /// Handles one decoded request carrying an optional trace context.
    /// The default drops the context so handlers that predate tracing
    /// keep working; tracing-aware handlers override this.
    fn handle_traced(&self, req: &Request, _trace: Option<&TraceContext>) -> Response {
        self.handle(req)
    }
}

impl Handler for ActivationServer {
    fn handle(&self, req: &Request) -> Response {
        ActivationServer::handle(self, req)
    }

    fn handle_traced(&self, req: &Request, trace: Option<&TraceContext>) -> Response {
        ActivationServer::handle_traced(self, req, trace)
    }
}

/// In-process transport: frames each request into a buffer, decodes it
/// back, dispatches, and frames the response the same way. Encode
/// buffers are per-client scratch, reused across calls.
pub struct LocalClient<H: Handler = ActivationServer> {
    server: Arc<H>,
    faults: Option<FaultInjector>,
    trace: Option<TraceContext>,
    scratch: FrameScratch,
    /// Staging buffer for in-flight frames (the "wire" of the in-process
    /// transport), reused across calls.
    wire_buf: Vec<u8>,
}

impl<H: Handler> LocalClient<H> {
    /// A client bound to the given server.
    pub fn new(server: Arc<H>) -> LocalClient<H> {
        LocalClient {
            server,
            faults: None,
            trace: None,
            scratch: FrameScratch::new(),
            wire_buf: Vec::new(),
        }
    }

    /// A client that consumes transport faults armed on `injector`
    /// (crash simulation only): an armed short read truncates the
    /// request frame in flight, an armed connection drop loses it
    /// entirely — in both cases before the server sees it.
    pub fn with_faults(server: Arc<H>, injector: FaultInjector) -> LocalClient<H> {
        LocalClient {
            server,
            faults: Some(injector),
            trace: None,
            scratch: FrameScratch::new(),
            wire_buf: Vec::new(),
        }
    }

    /// The server this client dispatches into.
    pub fn server(&self) -> &Arc<H> {
        &self.server
    }

    /// Submits up to `window` requests as one pipelined burst: every
    /// request is encoded into the in-process wire before the first
    /// response is decoded, exactly the frame interleaving a pipelined
    /// TCP client produces. Dispatch order — and therefore every journal
    /// byte and deterministic counter — is identical to `window`
    /// sequential [`Client::call`]s.
    ///
    /// # Errors
    ///
    /// Returns the first frame-level failure; responses before it are
    /// lost (as they would be on a torn connection).
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> Result<Vec<Response>, WireError> {
        // Phase 1: every request goes onto the wire back-to-back.
        self.wire_buf.clear();
        for req in reqs {
            let traced = TracedRequest {
                req: req.clone(),
                trace: self.trace.take(),
            };
            write_frame_with(&mut self.scratch, &mut self.wire_buf, &traced.to_json())
                .map_err(|e| io_err("encode request", e))?;
        }
        // Phase 2: the server drains the stream in order; responses are
        // framed back onto a response wire.
        let mut rd = &self.wire_buf[..];
        let mut resp_wire = Vec::new();
        for _ in reqs {
            let decoded = read_frame(&mut rd)
                .map_err(|e| io_err("decode request", e))?
                .ok_or_else(|| WireError::new("request frame truncated"))?;
            let traced = TracedRequest::from_json(&decoded)?;
            let resp = self
                .server
                .handle_traced(&traced.req, traced.trace.as_ref());
            write_frame_with(&mut self.scratch, &mut resp_wire, &resp.to_json())
                .map_err(|e| io_err("encode response", e))?;
        }
        // Phase 3: the client decodes the response burst.
        let mut rd = &resp_wire[..];
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            let decoded = read_frame(&mut rd)
                .map_err(|e| io_err("decode response", e))?
                .ok_or_else(|| WireError::new("response frame truncated"))?;
            out.push(Response::from_json(&decoded)?);
        }
        Ok(out)
    }
}

fn io_err(context: &str, e: io::Error) -> WireError {
    WireError::new(format!("{context}: {e}"))
}

impl<H: Handler> Client for LocalClient<H> {
    fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        // Encode the request through the real codec — as a traced
        // envelope when a context is armed, as a bare request otherwise,
        // so untraced traffic stays byte-identical to the old protocol.
        let traced = TracedRequest {
            req: req.clone(),
            trace: self.trace.take(),
        };
        self.wire_buf.clear();
        write_frame_with(&mut self.scratch, &mut self.wire_buf, &traced.to_json())
            .map_err(|e| io_err("encode request", e))?;
        // An armed transport fault strikes the request in flight — the
        // server never sees it. Storage faults pass through (the journal
        // store consumes those after dispatch).
        if let Some(injector) = &self.faults {
            match injector.take() {
                Some(ArmedFault::ConnDrop) => {
                    return Err(WireError::new(
                        "injected connection drop: request frame lost in flight",
                    ));
                }
                Some(ArmedFault::ShortRead { salt }) => {
                    // Deliver only a prefix of the frame; the codec must
                    // reject the truncation.
                    let keep = (salt % self.wire_buf.len().max(1) as u64) as usize;
                    self.wire_buf.truncate(keep);
                    let short = read_frame(&mut self.wire_buf.as_slice())
                        .map_err(|e| io_err("decode request", e))?;
                    return match short {
                        None => Err(WireError::new("injected short read: request frame truncated")),
                        Some(_) => Err(WireError::new(
                            "injected short read left a whole frame — codec bug",
                        )),
                    };
                }
                Some(other) => injector.arm(other),
                None => {}
            }
        }
        let decoded = read_frame(&mut self.wire_buf.as_slice())
            .map_err(|e| io_err("decode request", e))?
            .ok_or_else(|| WireError::new("request frame truncated"))?;
        let traced = TracedRequest::from_json(&decoded)?;
        // ...dispatch, then round-trip the response too.
        let resp = self
            .server
            .handle_traced(&traced.req, traced.trace.as_ref());
        self.wire_buf.clear();
        write_frame_with(&mut self.scratch, &mut self.wire_buf, &resp.to_json())
            .map_err(|e| io_err("encode response", e))?;
        let decoded = read_frame(&mut self.wire_buf.as_slice())
            .map_err(|e| io_err("decode response", e))?
            .ok_or_else(|| WireError::new("response frame truncated"))?;
        Response::from_json(&decoded)
    }

    fn set_trace(&mut self, ctx: TraceContext) {
        self.trace = Some(ctx);
    }
}

/// Default accept-loop poll sleep in milliseconds (between polls of the
/// nonblocking listener and the shutdown flag). Configurable per server
/// via [`crate::server::ServerConfig::accept_poll_ms`] /
/// [`TcpServer::spawn_with_poll`]; lowered from the historical fixed
/// 10 ms so connection setup and shutdown respond faster.
pub const DEFAULT_ACCEPT_POLL_MS: u64 = 2;

/// Deterministically scheduled TCP faults (crash simulation): the plan's
/// ticks index accepted connections (delayed accepts) or received frames
/// (short reads / connection drops).
pub struct TcpFaults {
    plan: FaultPlan,
    conns: AtomicU64,
    frames: AtomicU64,
}

impl TcpFaults {
    /// Faults following `plan`.
    pub fn new(plan: FaultPlan) -> Arc<TcpFaults> {
        Arc::new(TcpFaults {
            plan,
            conns: AtomicU64::new(0),
            frames: AtomicU64::new(0),
        })
    }
}

/// A running TCP front end: nonblocking accept loop plus one handler
/// thread per accepted connection.
pub struct TcpServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// One clone per live connection, so shutdown can unblock handlers
    /// parked in `read_frame` (see `stop`).
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving with the
    /// default accept poll ([`DEFAULT_ACCEPT_POLL_MS`]).
    pub fn spawn<H: Handler + 'static>(
        addr: impl ToSocketAddrs,
        server: Arc<H>,
    ) -> io::Result<TcpServer> {
        TcpServer::spawn_inner(addr, server, None, DEFAULT_ACCEPT_POLL_MS)
    }

    /// Binds `addr` and serves with an explicit accept-loop poll sleep —
    /// how a front end honors
    /// [`crate::server::ServerConfig::accept_poll_ms`].
    pub fn spawn_with_poll<H: Handler + 'static>(
        addr: impl ToSocketAddrs,
        server: Arc<H>,
        poll_ms: u64,
    ) -> io::Result<TcpServer> {
        TcpServer::spawn_inner(addr, server, None, poll_ms)
    }

    /// Binds `addr` and serves with a deterministic fault schedule
    /// (crash simulation only).
    pub fn spawn_with_faults<H: Handler + 'static>(
        addr: impl ToSocketAddrs,
        server: Arc<H>,
        faults: Arc<TcpFaults>,
    ) -> io::Result<TcpServer> {
        TcpServer::spawn_inner(addr, server, Some(faults), DEFAULT_ACCEPT_POLL_MS)
    }

    fn spawn_inner<H: Handler + 'static>(
        addr: impl ToSocketAddrs,
        server: Arc<H>,
        faults: Option<Arc<TcpFaults>>,
        poll_ms: u64,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let conns = Arc::new(Mutex::new(Vec::new()));
        let conn_registry = Arc::clone(&conns);
        let base = hwm_trace::current_path();
        let accept_poll = Duration::from_millis(poll_ms.max(1));
        let accept_thread = std::thread::spawn(move || {
            let _scope = hwm_trace::thread_scope(&base);
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if let Some(f) = &faults {
                            let conn = f.conns.fetch_add(1, Ordering::SeqCst);
                            if f.plan.kind == FaultKind::DelayedAccept && f.plan.is_crash(conn) {
                                std::thread::sleep(Duration::from_millis(
                                    f.plan.accept_delay_ms(conn),
                                ));
                            }
                        }
                        // Frames are tiny request/response pairs; Nagle +
                        // delayed ACK would stall each round trip ~40ms.
                        let _ = stream.set_nodelay(true);
                        if let Ok(clone) = stream.try_clone() {
                            conn_registry
                                .lock()
                                .expect("connection registry poisoned")
                                .push(clone);
                        }
                        let server = Arc::clone(&server);
                        let faults = faults.clone();
                        let base = hwm_trace::current_path();
                        handlers.push(std::thread::spawn(move || {
                            let _scope = hwm_trace::thread_scope(&base);
                            serve_connection(stream, server.as_ref(), faults.as_deref());
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(accept_poll);
                    }
                    Err(_) => break,
                }
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(TcpServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the accept loop (which in turn joins
    /// every connection handler).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Handlers block in read_frame until their peer hangs up; shut
        // the sockets down so those reads return and the joins below
        // cannot hang on an idle connection.
        if let Ok(conns) = self.conns.lock() {
            for stream in conns.iter() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serves one connection until EOF or I/O error. A frame that decodes as
/// JSON but not as a request gets a `malformed` error response; the
/// connection stays open (the client may recover). Broken frames tear the
/// connection down. An injected fault loses the incoming request —
/// short-read tears it mid-frame, conn-drop discards it whole — and
/// closes the connection before anything is dispatched.
fn serve_connection<H: Handler>(mut stream: TcpStream, server: &H, faults: Option<&TcpFaults>) {
    // Per-connection scratch: a decoder that drains request bursts with
    // large reads, an encode scratch, and a response staging buffer.
    // Responses accumulate while the decoder still holds complete frames
    // and leave in one write when the buffer runs dry, so a pipelined
    // window costs one read and one write instead of one syscall pair
    // per request. A serial client sees the exact old pattern: read one
    // frame, write one response.
    let mut scratch = FrameScratch::new();
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut staged: Vec<u8> = Vec::new();
    loop {
        if let Some(f) = faults {
            let frame = f.frames.fetch_add(1, Ordering::SeqCst);
            if f.plan.is_crash(frame) {
                match f.plan.kind {
                    FaultKind::ShortRead => {
                        // Read part of the length prefix, then hang up:
                        // the frame died mid-wire. (Fault plans drive
                        // serial clients, so the decoder is empty here.)
                        let mut partial = [0u8; 2];
                        let _ = stream.read(&mut partial);
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                    FaultKind::ConnDrop => {
                        // Receive the whole frame, then drop it on the
                        // floor and hang up — never dispatched.
                        let _ = read_frame(&mut stream);
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                    // Storage and accept faults are handled elsewhere.
                    _ => {}
                }
            }
        }
        // Pull the next request: straight from the decoder while the
        // burst lasts; once it runs dry, flush staged responses and
        // block on the socket.
        let payload = loop {
            match decoder.next_frame() {
                Ok(Some(p)) => break p,
                Ok(None) => {}
                Err(_) => return,
            }
            if !staged.is_empty() {
                if stream.write_all(&staged).and_then(|()| stream.flush()).is_err() {
                    return;
                }
                staged.clear();
            }
            match stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => decoder.extend(&chunk[..n]),
                Err(_) => return,
            }
        };
        let resp = match TracedRequest::from_json(&payload) {
            Ok(traced) => server.handle_traced(&traced.req, traced.trace.as_ref()),
            Err(e) => Response::Error {
                code: ErrorCode::Malformed,
                message: e.message,
                retry_at: None,
            },
        };
        match encode_frame(&mut scratch, &resp.to_json()) {
            Ok(frame) => staged.extend_from_slice(frame),
            Err(_) => return,
        }
    }
}

/// A blocking TCP client speaking the framed protocol, with a reusable
/// per-connection encode scratch.
pub struct TcpClient {
    stream: TcpStream,
    trace: Option<TraceContext>,
    scratch: FrameScratch,
    burst: Vec<u8>,
    decoder: FrameDecoder,
}

impl TcpClient {
    /// Connects to a [`TcpServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            stream,
            trace: None,
            scratch: FrameScratch::new(),
            burst: Vec::new(),
            decoder: FrameDecoder::new(),
        })
    }

    /// Submits `reqs` as one pipelined burst: every request frame is
    /// written before the first response is read, so the connection pays
    /// one round-trip latency for the whole window instead of one per
    /// request. The server dispatches in arrival order, so journal bytes
    /// and deterministic counters are identical to sequential calls.
    ///
    /// # Errors
    ///
    /// Returns the first frame-level failure; responses after it are
    /// lost (the connection should be considered dead).
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> Result<Vec<Response>, WireError> {
        // Write the burst as one contiguous byte run: frames are
        // appended to the reusable staging buffer and leave in a single
        // write_all, minimizing syscalls and packets.
        self.burst.clear();
        for req in reqs {
            let traced = TracedRequest {
                req: req.clone(),
                trace: self.trace.take(),
            };
            write_frame_with(&mut self.scratch, &mut self.burst, &traced.to_json())
                .map_err(|e| io_err("send request", e))?;
        }
        self.stream
            .write_all(&self.burst)
            .map_err(|e| io_err("send request", e))?;
        self.stream.flush().map_err(|e| io_err("send request", e))?;
        // Drain responses through the decoder: each socket read pulls as
        // many response frames as the kernel has buffered, instead of
        // two read syscalls per frame.
        let mut out = Vec::with_capacity(reqs.len());
        let mut chunk = [0u8; 16 * 1024];
        while out.len() < reqs.len() {
            if let Some(payload) = self
                .decoder
                .next_frame()
                .map_err(|e| io_err("read response", e))?
            {
                out.push(Response::from_json(&payload)?);
                continue;
            }
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(|e| io_err("read response", e))?;
            if n == 0 {
                return Err(WireError::new("server closed the connection"));
            }
            self.decoder.extend(&chunk[..n]);
        }
        Ok(out)
    }
}

impl Client for TcpClient {
    fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        let traced = TracedRequest {
            req: req.clone(),
            trace: self.trace.take(),
        };
        write_frame_with(&mut self.scratch, &mut self.stream, &traced.to_json())
            .map_err(|e| io_err("send request", e))?;
        match read_frame(&mut self.stream).map_err(|e| io_err("read response", e))? {
            Some(payload) => Response::from_json(&payload),
            None => Err(WireError::new("server closed the connection")),
        }
    }

    fn set_trace(&mut self, ctx: TraceContext) {
        self.trace = Some(ctx);
    }
}
