//! Deterministic fault injection for the crash simulation.
//!
//! A [`FaultPlan`] is a pure function of `(seed, kind)` plus the set of
//! *eligible* logical ticks the caller derives from a fault-free oracle
//! run. All draws use the workspace `StdRng`, never wall time or thread
//! scheduling, so the same plan — the same crash ticks, the same torn-byte
//! counts — is produced on every run and for every `--jobs` setting. That
//! is what lets the simulation compare a faulted run against its oracle
//! byte for byte.
//!
//! Fault kinds split into two families with different crash semantics:
//!
//! * **storage faults** ([`FaultKind::TornWrite`], [`FaultKind::DiskFull`])
//!   strike the journal append of the doomed request. They are only armed
//!   on ticks whose oracle outcome appends a journal line (otherwise there
//!   is nothing to tear). The write-ahead discipline means the in-memory
//!   state never saw the mutation, the response is never delivered, and
//!   the retried request after restart lands on the same `seq`.
//! * **transport faults** ([`FaultKind::ShortRead`],
//!   [`FaultKind::ConnDrop`], [`FaultKind::DelayedAccept`]) lose or delay
//!   the request before the server dispatches it, so any tick is eligible
//!   and a retry is always safe.
//!
//! The [`FaultInjector`] is the arming channel: the simulation arms
//! exactly one fault, the doomed operation consumes it, everything else
//! passes through untouched.

use crate::storage::JournalStore;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt;
use std::fs::File;
use std::io;
use std::sync::{Arc, Mutex};

/// A category of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The journal append writes only a prefix of the line, then fails —
    /// the crashed file ends in a torn tail.
    TornWrite,
    /// The journal append fails with ENOSPC before writing anything.
    DiskFull,
    /// The response frame is truncated mid-flight; the client sees a
    /// short read.
    ShortRead,
    /// The connection drops before the request frame is fully received;
    /// the request is lost.
    ConnDrop,
    /// The listener delays accepting the connection (liveness fault; no
    /// state is ever at risk).
    DelayedAccept,
}

impl FaultKind {
    /// CLI/CI name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::TornWrite => "torn-write",
            FaultKind::DiskFull => "disk-full",
            FaultKind::ShortRead => "short-read",
            FaultKind::ConnDrop => "conn-drop",
            FaultKind::DelayedAccept => "delayed-accept",
        }
    }

    /// Parses a CLI/CI name.
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "torn-write" => Some(FaultKind::TornWrite),
            "disk-full" => Some(FaultKind::DiskFull),
            "short-read" => Some(FaultKind::ShortRead),
            "conn-drop" => Some(FaultKind::ConnDrop),
            "delayed-accept" => Some(FaultKind::DelayedAccept),
            _ => None,
        }
    }

    /// Whether this kind strikes the journal append path (and therefore
    /// must be armed on a tick whose oracle outcome appends a line).
    pub fn is_storage(self) -> bool {
        matches!(self, FaultKind::TornWrite | FaultKind::DiskFull)
    }

    /// All kinds, in CLI order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TornWrite,
        FaultKind::DiskFull,
        FaultKind::ShortRead,
        FaultKind::ConnDrop,
        FaultKind::DelayedAccept,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A seeded schedule of crash ticks for one fault kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Simulation seed the plan was drawn from.
    pub seed: u64,
    /// The kind every crash in this plan injects.
    pub kind: FaultKind,
    /// Logical ticks (indices into the request schedule) at which the
    /// fault fires, strictly increasing.
    pub crash_ticks: Vec<u64>,
}

impl FaultPlan {
    /// Draws `crashes` distinct crash ticks from `eligible` (sorted
    /// ascending in the result). Fewer ticks than requested crashes means
    /// every eligible tick is used. The draw depends only on
    /// `(seed, kind, eligible)` — never on `--jobs`, scheduling, or wall
    /// time.
    pub fn new(seed: u64, kind: FaultKind, eligible: &[u64], crashes: usize) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(plan_salt(seed, kind));
        let mut pool: Vec<u64> = eligible.to_vec();
        pool.sort_unstable();
        pool.dedup();
        let mut crash_ticks = Vec::new();
        for _ in 0..crashes.min(pool.len()) {
            let i = rng.random_range(0..pool.len());
            crash_ticks.push(pool.swap_remove(i));
        }
        crash_ticks.sort_unstable();
        FaultPlan {
            seed,
            kind,
            crash_ticks,
        }
    }

    /// Whether the plan fires at `tick`.
    pub fn is_crash(&self, tick: u64) -> bool {
        self.crash_ticks.binary_search(&tick).is_ok()
    }

    /// A deterministic per-tick salt for byte-level fault parameters
    /// (how many bytes of a torn line survive, how far a response frame
    /// gets). Pure in `(seed, kind, tick)`.
    pub fn byte_salt(&self, tick: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(plan_salt(self.seed, self.kind) ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        rng.next_u64()
    }

    /// Accept delay in milliseconds for a delayed-accept fault at
    /// connection number `conn` (bounded so tests stay fast).
    pub fn accept_delay_ms(&self, conn: u64) -> u64 {
        1 + self.byte_salt(conn) % 20
    }
}

fn plan_salt(seed: u64, kind: FaultKind) -> u64 {
    // Distinct streams per kind so the torn-write and conn-drop plans for
    // one seed do not share crash ticks by construction.
    let kind_salt = match kind {
        FaultKind::TornWrite => 0x746f_726e,
        FaultKind::DiskFull => 0x6675_6c6c,
        FaultKind::ShortRead => 0x7265_6164,
        FaultKind::ConnDrop => 0x6472_6f70,
        FaultKind::DelayedAccept => 0x6163_6370,
    };
    seed ^ (kind_salt as u64).wrapping_mul(0x0000_0100_0000_01b3)
}

/// A single armed fault, consumed by the first operation that can honor
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmedFault {
    /// Tear the next journal append: write `1 + salt % (len - 1)` bytes,
    /// flush them to the file, then fail.
    TornWrite {
        /// Deterministic salt choosing how many bytes survive.
        salt: u64,
    },
    /// Fail the next journal append with ENOSPC, writing nothing.
    DiskFull,
    /// Truncate the next response frame; the reader sees a short read.
    ShortRead {
        /// Deterministic salt choosing how many bytes survive.
        salt: u64,
    },
    /// Drop the connection before the next request is dispatched.
    ConnDrop,
}

/// The one-shot arming channel between the simulation driver and the
/// storage/transport shims. Cloning shares the slot.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    armed: Arc<Mutex<Option<ArmedFault>>>,
}

impl FaultInjector {
    /// An injector with nothing armed.
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Arms `fault`; the next operation that can honor it consumes it.
    /// Replaces any previously armed fault.
    pub fn arm(&self, fault: ArmedFault) {
        *self.armed.lock().expect("fault injector poisoned") = Some(fault);
    }

    /// Takes the armed fault, if any (one-shot consumption).
    pub fn take(&self) -> Option<ArmedFault> {
        self.armed.lock().expect("fault injector poisoned").take()
    }

    /// Whether a fault is currently armed.
    pub fn is_armed(&self) -> bool {
        self.armed.lock().expect("fault injector poisoned").is_some()
    }
}

/// A [`JournalStore`] that interposes injected storage faults in front of
/// an inner store. Transport faults armed on the shared injector pass
/// through untouched (the transport consumes those).
pub struct FaultyStore {
    inner: Box<dyn JournalStore>,
    injector: FaultInjector,
}

impl FaultyStore {
    /// Wraps `inner`, consuming storage faults armed on `injector`.
    pub fn new(inner: Box<dyn JournalStore>, injector: FaultInjector) -> FaultyStore {
        FaultyStore { inner, injector }
    }
}

impl fmt::Debug for FaultyStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyStore").finish_non_exhaustive()
    }
}

impl JournalStore for FaultyStore {
    fn append(&mut self, line: &[u8]) -> io::Result<()> {
        // Only storage faults are consumed here; peek-and-put-back keeps
        // transport faults armed for the transport layer.
        let armed = self.injector.take();
        match armed {
            Some(ArmedFault::DiskFull) => Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected disk-full (ENOSPC) on journal append",
            )),
            Some(ArmedFault::TornWrite { salt }) => {
                // A journal line is always at least "{}\n" — tear it so at
                // least one byte lands and at least one byte is lost.
                let keep = if line.len() < 2 {
                    line.len().saturating_sub(1)
                } else {
                    1 + (salt % (line.len() as u64 - 1)) as usize
                };
                self.inner.append(&line[..keep])?;
                // Push the torn prefix all the way to the file so the
                // crashed journal really ends mid-line on disk.
                self.inner.flush()?;
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected torn write: {keep} of {} bytes", line.len()),
                ))
            }
            other => {
                if let Some(f) = other {
                    self.injector.arm(f);
                }
                self.inner.append(line)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn commit(&mut self) -> io::Result<()> {
        self.inner.commit()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }

    fn reopen(&mut self, file: File) -> io::Result<()> {
        self.inner.reopen(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::FileStore;

    #[test]
    fn kind_names_round_trip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(FaultKind::parse("gamma-ray"), None);
    }

    #[test]
    fn plans_are_deterministic_and_sorted() {
        let eligible: Vec<u64> = (0..50).collect();
        let a = FaultPlan::new(2024, FaultKind::TornWrite, &eligible, 3);
        let b = FaultPlan::new(2024, FaultKind::TornWrite, &eligible, 3);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.crash_ticks.len(), 3);
        assert!(a.crash_ticks.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(a.crash_ticks.iter().all(|t| eligible.contains(t)));
        let c = FaultPlan::new(2025, FaultKind::TornWrite, &eligible, 3);
        assert_ne!(a.crash_ticks, c.crash_ticks, "seed changes the plan");
        let d = FaultPlan::new(2024, FaultKind::ConnDrop, &eligible, 3);
        assert_ne!(a.crash_ticks, d.crash_ticks, "kind changes the stream");
        // More crashes than eligible ticks: use them all.
        let e = FaultPlan::new(7, FaultKind::DiskFull, &[4, 2], 9);
        assert_eq!(e.crash_ticks, vec![2, 4]);
        assert!(e.is_crash(4) && !e.is_crash(3));
    }

    #[test]
    fn byte_salts_are_pure_in_tick() {
        let plan = FaultPlan::new(99, FaultKind::TornWrite, &[1, 2, 3], 2);
        assert_eq!(plan.byte_salt(1), plan.byte_salt(1));
        assert_ne!(plan.byte_salt(1), plan.byte_salt(2));
        let ms = plan.accept_delay_ms(0);
        assert!((1..=20).contains(&ms));
    }

    #[test]
    fn injector_is_one_shot() {
        let inj = FaultInjector::new();
        assert!(!inj.is_armed());
        inj.arm(ArmedFault::DiskFull);
        assert!(inj.is_armed());
        assert_eq!(inj.take(), Some(ArmedFault::DiskFull));
        assert_eq!(inj.take(), None);
    }

    #[test]
    fn faulty_store_tears_and_fails() {
        let dir = std::env::temp_dir().join(format!("hwm-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap();
        let inj = FaultInjector::new();
        let mut store = FaultyStore::new(Box::new(FileStore::new(file)), inj.clone());

        store.append(b"{\"seq\":1}\n").unwrap();
        inj.arm(ArmedFault::DiskFull);
        let err = store.append(b"{\"seq\":2}\n").unwrap_err();
        assert!(err.to_string().contains("disk-full"), "{err}");
        store.flush().unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"seq\":1}\n",
            "disk-full writes nothing"
        );

        inj.arm(ArmedFault::TornWrite { salt: 3 });
        let err = store.append(b"{\"seq\":2}\n").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"seq\":1}\n"), "good prefix intact");
        let torn = &text["{\"seq\":1}\n".len()..];
        assert!(!torn.is_empty() && !torn.ends_with('\n'), "tail is torn: {torn:?}");

        // A transport fault passes through the store untouched.
        inj.arm(ArmedFault::ConnDrop);
        store.append(b"{\"seq\":2}\n").unwrap();
        assert_eq!(inj.take(), Some(ArmedFault::ConnDrop), "still armed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
