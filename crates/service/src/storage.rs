//! Journal storage shim: where journal bytes go and when they reach disk.
//!
//! The registry writes through a [`JournalStore`] rather than a raw
//! `BufWriter<File>` so the crash simulation can interpose a fault layer
//! (see [`crate::fault::FaultyStore`]) without the registry knowing.
//! Production uses [`FileStore`]; everything else is a test double.
//!
//! [`FlushPolicy`] is the durability knob on
//! [`crate::server::ServerConfig`]: it decides how far each appended
//! event is pushed toward stable storage before the mutation is
//! acknowledged.

use std::fs::File;
use std::io::{self, BufWriter, Write};

/// When journal bytes reach the operating system / the platter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Keep bytes in the user-space buffer; they reach the OS at
    /// compaction, shutdown, or when the buffer fills. Fastest, but a
    /// process crash loses buffered events (recovery still works — the
    /// journal simply ends earlier).
    Buffered,
    /// `flush()` to the OS after every event (the historical behavior and
    /// the default): a process crash loses nothing, a kernel panic or
    /// power cut may lose the tail.
    #[default]
    PerEvent,
    /// `flush()` + `fsync()` after every event: survives power loss at
    /// the cost of a disk round-trip per mutation.
    Sync,
}

impl FlushPolicy {
    /// Config/CLI name of the policy.
    pub fn as_str(self) -> &'static str {
        match self {
            FlushPolicy::Buffered => "buffered",
            FlushPolicy::PerEvent => "per-event",
            FlushPolicy::Sync => "sync",
        }
    }

    /// Parses a config/CLI name.
    pub fn parse(s: &str) -> Option<FlushPolicy> {
        match s {
            "buffered" => Some(FlushPolicy::Buffered),
            "per-event" => Some(FlushPolicy::PerEvent),
            "sync" => Some(FlushPolicy::Sync),
            _ => None,
        }
    }
}

/// An append-only byte sink for journal lines.
///
/// `append` writes one complete `\n`-terminated line; the caller applies
/// the [`FlushPolicy`] by following up with `flush`/`sync`. `reopen`
/// swaps the underlying file after compaction rewrites the journal (the
/// old handle points at the renamed-away inode).
pub trait JournalStore: Send {
    /// Appends raw bytes (one journal line).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error; the registry treats any
    /// failure as "the event was not durably recorded" and refuses the
    /// mutation.
    fn append(&mut self, line: &[u8]) -> io::Result<()>;

    /// Pushes buffered bytes to the OS.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn flush(&mut self) -> io::Result<()>;

    /// Flushes and then fsyncs to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn sync(&mut self) -> io::Result<()>;

    /// Replaces the underlying file (after compaction truncated the
    /// journal via rename).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error from flushing the old file.
    fn reopen(&mut self, file: File) -> io::Result<()>;
}

/// The production store: a buffered append-only file.
#[derive(Debug)]
pub struct FileStore {
    writer: BufWriter<File>,
}

impl FileStore {
    /// Wraps an open append-mode file.
    pub fn new(file: File) -> FileStore {
        FileStore {
            writer: BufWriter::new(file),
        }
    }
}

impl JournalStore for FileStore {
    fn append(&mut self, line: &[u8]) -> io::Result<()> {
        self.writer.write_all(line)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()
    }

    fn reopen(&mut self, file: File) -> io::Result<()> {
        // The outgoing writer holds the renamed-away inode; drop any
        // buffered bytes for it *after* a best-effort flush so nothing is
        // silently lost when compaction races a buffered policy.
        self.writer.flush()?;
        self.writer = BufWriter::new(file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_policy_names_round_trip() {
        for p in [FlushPolicy::Buffered, FlushPolicy::PerEvent, FlushPolicy::Sync] {
            assert_eq!(FlushPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(FlushPolicy::parse("eventually"), None);
        assert_eq!(FlushPolicy::default(), FlushPolicy::PerEvent);
    }

    #[test]
    fn file_store_appends_and_reopens() {
        let dir = std::env::temp_dir().join(format!("hwm-storage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.jsonl");
        let _ = std::fs::remove_file(&path);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap();
        let mut store = FileStore::new(file);
        store.append(b"one\n").unwrap();
        store.sync().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "one\n");
        // Swap in a fresh file mid-stream, as compaction does.
        let path2 = dir.join("store2.jsonl");
        let _ = std::fs::remove_file(&path2);
        let file2 = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path2)
            .unwrap();
        store.reopen(file2).unwrap();
        store.append(b"two\n").unwrap();
        store.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&path2).unwrap(), "two\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
