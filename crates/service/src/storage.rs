//! Journal storage shim: where journal bytes go and when they reach disk.
//!
//! The registry writes through a [`JournalStore`] rather than a raw
//! `BufWriter<File>` so the crash simulation can interpose a fault layer
//! (see [`crate::fault::FaultyStore`]) without the registry knowing.
//! Production uses [`FileStore`]; everything else is a test double.
//!
//! [`FlushPolicy`] is the durability knob on
//! [`crate::server::ServerConfig`]: it decides how far each appended
//! event is pushed toward stable storage before the mutation is
//! acknowledged.

use std::fs::File;
use std::io::{self, BufWriter, Write};

/// Default batch ceiling for [`FlushPolicy::GroupCommit`]: the plain
/// `"group-commit"` config name parses to this.
pub const DEFAULT_GROUP_COMMIT_BATCH: u32 = 32;

/// When journal bytes reach the operating system / the platter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Keep bytes in the user-space buffer; they reach the OS at
    /// compaction, shutdown, or when the buffer fills. Fastest, but a
    /// process crash loses buffered events (recovery still works — the
    /// journal simply ends earlier).
    Buffered,
    /// `flush()` to the OS after every event (the historical behavior and
    /// the default): a process crash loses nothing, a kernel panic or
    /// power cut may lose the tail.
    #[default]
    PerEvent,
    /// `flush()` + `fsync()` after every event: survives power loss at
    /// the cost of a disk round-trip per mutation.
    Sync,
    /// Group commit: events accumulate in the user-space buffer and a
    /// single `flush()` covers up to `max_batch` of them. The barrier is
    /// driven by the *event count* (and the logical tick clock at request
    /// boundaries), never by wall time, so the on-disk byte stream is
    /// identical to [`FlushPolicy::PerEvent`] — only the number of flush
    /// syscalls changes. A process crash loses at most the uncommitted
    /// tail of the current batch (recovery still works, the journal
    /// simply ends earlier, as with [`FlushPolicy::Buffered`]).
    GroupCommit {
        /// Flush after at most this many uncommitted events (0 behaves
        /// like 1, i.e. per-event).
        max_batch: u32,
    },
}

impl FlushPolicy {
    /// Group commit with the default batch ceiling.
    pub fn group_commit() -> FlushPolicy {
        FlushPolicy::GroupCommit {
            max_batch: DEFAULT_GROUP_COMMIT_BATCH,
        }
    }

    /// Config/CLI name of the policy (batch ceiling elided; see
    /// [`FlushPolicy::config_name`] for the lossless rendering).
    pub fn as_str(self) -> &'static str {
        match self {
            FlushPolicy::Buffered => "buffered",
            FlushPolicy::PerEvent => "per-event",
            FlushPolicy::Sync => "sync",
            FlushPolicy::GroupCommit { .. } => "group-commit",
        }
    }

    /// Lossless config/CLI rendering: `"group-commit:N"` keeps the batch
    /// ceiling; everything else matches [`FlushPolicy::as_str`].
    pub fn config_name(self) -> String {
        match self {
            FlushPolicy::GroupCommit { max_batch } => format!("group-commit:{max_batch}"),
            other => other.as_str().to_string(),
        }
    }

    /// Parses a config/CLI name. `"group-commit"` takes the default batch
    /// ceiling ([`DEFAULT_GROUP_COMMIT_BATCH`]); `"group-commit:N"` sets
    /// it explicitly.
    pub fn parse(s: &str) -> Option<FlushPolicy> {
        match s {
            "buffered" => Some(FlushPolicy::Buffered),
            "per-event" => Some(FlushPolicy::PerEvent),
            "sync" => Some(FlushPolicy::Sync),
            "group-commit" => Some(FlushPolicy::group_commit()),
            _ => {
                let n = s.strip_prefix("group-commit:")?;
                n.parse::<u32>().ok().map(|max_batch| FlushPolicy::GroupCommit { max_batch })
            }
        }
    }
}

/// An append-only byte sink for journal lines.
///
/// `append` writes one complete `\n`-terminated line; the caller applies
/// the [`FlushPolicy`] by following up with `flush`/`sync`. `reopen`
/// swaps the underlying file after compaction rewrites the journal (the
/// old handle points at the renamed-away inode).
pub trait JournalStore: Send {
    /// Appends raw bytes (one journal line).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error; the registry treats any
    /// failure as "the event was not durably recorded" and refuses the
    /// mutation.
    fn append(&mut self, line: &[u8]) -> io::Result<()>;

    /// Pushes buffered bytes to the OS.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn flush(&mut self) -> io::Result<()>;

    /// Group-commit barrier: makes every event appended so far as durable
    /// as the store can — one fsync covering the whole batch for
    /// [`FileStore`] (the trait default delegates to
    /// [`JournalStore::flush`] for stores with no stronger notion).
    /// The registry calls this at logical-clock boundaries when
    /// [`FlushPolicy::GroupCommit`] closes a batch, and unconditionally at
    /// compaction and shutdown.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn commit(&mut self) -> io::Result<()> {
        self.flush()
    }

    /// Flushes and then fsyncs to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    fn sync(&mut self) -> io::Result<()>;

    /// Replaces the underlying file (after compaction truncated the
    /// journal via rename).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error from flushing the old file.
    fn reopen(&mut self, file: File) -> io::Result<()>;
}

/// The production store: a buffered append-only file.
#[derive(Debug)]
pub struct FileStore {
    writer: BufWriter<File>,
}

impl FileStore {
    /// Wraps an open append-mode file.
    pub fn new(file: File) -> FileStore {
        FileStore {
            writer: BufWriter::new(file),
        }
    }
}

impl JournalStore for FileStore {
    fn append(&mut self, line: &[u8]) -> io::Result<()> {
        self.writer.write_all(line)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn commit(&mut self) -> io::Result<()> {
        // The group-commit barrier is a *durability* barrier: one fsync
        // covers the whole batch, which is the entire point of batching
        // — N events pay one device round trip instead of N.
        self.writer.flush()?;
        self.writer.get_ref().sync_data()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()
    }

    fn reopen(&mut self, file: File) -> io::Result<()> {
        // The outgoing writer holds the renamed-away inode; drop any
        // buffered bytes for it *after* a best-effort flush so nothing is
        // silently lost when compaction races a buffered policy.
        self.writer.flush()?;
        self.writer = BufWriter::new(file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_policy_names_round_trip() {
        for p in [
            FlushPolicy::Buffered,
            FlushPolicy::PerEvent,
            FlushPolicy::Sync,
            FlushPolicy::group_commit(),
        ] {
            assert_eq!(FlushPolicy::parse(p.as_str()), Some(p));
            assert_eq!(FlushPolicy::parse(&p.config_name()), Some(p));
        }
        assert_eq!(
            FlushPolicy::parse("group-commit:7"),
            Some(FlushPolicy::GroupCommit { max_batch: 7 })
        );
        assert_eq!(
            FlushPolicy::GroupCommit { max_batch: 7 }.config_name(),
            "group-commit:7"
        );
        assert_eq!(FlushPolicy::parse("group-commit:x"), None);
        assert_eq!(FlushPolicy::parse("eventually"), None);
        assert_eq!(FlushPolicy::default(), FlushPolicy::PerEvent);
    }

    #[test]
    fn file_store_appends_and_reopens() {
        let dir = std::env::temp_dir().join(format!("hwm-storage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.jsonl");
        let _ = std::fs::remove_file(&path);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap();
        let mut store = FileStore::new(file);
        store.append(b"one\n").unwrap();
        store.sync().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "one\n");
        // Swap in a fresh file mid-stream, as compaction does.
        let path2 = dir.join("store2.jsonl");
        let _ = std::fs::remove_file(&path2);
        let file2 = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path2)
            .unwrap();
        store.reopen(file2).unwrap();
        store.append(b"two\n").unwrap();
        store.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&path2).unwrap(), "two\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
