//! Per-client admission control: token bucket + exponential lockout.
//!
//! Two independent mechanisms, both keyed by the wire `client` identity
//! and driven by the server's **logical clock** (one tick per request —
//! not wall time, so admission decisions are a pure function of the
//! request sequence and the harness's determinism contract extends to
//! them):
//!
//! * a **token bucket** caps sustained request rate: `burst` tokens,
//!   refilled one per `refill_ticks` elapsed ticks. An empty bucket
//!   answers [`Decision::Throttled`] with the retry tick.
//! * an **exponential lockout** punishes wrong readouts: after
//!   `failure_threshold` consecutive failures the client is locked out for
//!   `base_lockout_ticks`, doubling on each subsequent lockout up to
//!   `max_lockout_ticks`. This is the online counterpart of the paper's
//!   Table 3 brute-force analysis — the offline attacker spends ~10⁶ free
//!   guesses, the online attacker gets `failure_threshold` per lockout
//!   window (see `hwm_attacks::online`).

use std::collections::HashMap;

/// Rate-limiter tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThrottleConfig {
    /// Token-bucket capacity (requests admitted back-to-back).
    pub burst: u32,
    /// Ticks per replenished token.
    pub refill_ticks: u64,
    /// Consecutive failures before a lockout fires.
    pub failure_threshold: u32,
    /// First lockout duration in ticks.
    pub base_lockout_ticks: u64,
    /// Lockout durations are capped here (doubling stops).
    pub max_lockout_ticks: u64,
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig {
            burst: 64,
            refill_ticks: 1,
            failure_threshold: 5,
            base_lockout_ticks: 1_000,
            max_lockout_ticks: 1 << 20,
        }
    }
}

/// Outcome of an admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Admitted; one token consumed.
    Allowed,
    /// Bucket empty; retry at the given tick.
    Throttled {
        /// First tick at which a token will be available.
        retry_at: u64,
    },
    /// Lockout active until the given tick.
    LockedOut {
        /// First tick after the lockout expires.
        until: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct ClientState {
    tokens: u32,
    last_refill: u64,
    consecutive_failures: u32,
    locked_until: u64,
    lockouts: u32,
}

/// The per-client rate limiter.
#[derive(Debug)]
pub struct RateLimiter {
    config: ThrottleConfig,
    clients: HashMap<String, ClientState>,
    total_lockouts: u64,
}

impl RateLimiter {
    /// A limiter with the given tuning.
    pub fn new(config: ThrottleConfig) -> RateLimiter {
        RateLimiter {
            config,
            clients: HashMap::new(),
            total_lockouts: 0,
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &ThrottleConfig {
        &self.config
    }

    fn state_mut(&mut self, client: &str, now: u64) -> &mut ClientState {
        let burst = self.config.burst;
        self.clients
            .entry(client.to_string())
            .or_insert(ClientState {
                tokens: burst,
                last_refill: now,
                consecutive_failures: 0,
                locked_until: 0,
                lockouts: 0,
            })
    }

    /// Admission check at logical tick `now`; consumes a token when
    /// admitted.
    pub fn check(&mut self, client: &str, now: u64) -> Decision {
        let config = self.config;
        let s = self.state_mut(client, now);
        if now < s.locked_until {
            return Decision::LockedOut {
                until: s.locked_until,
            };
        }
        // Refill for elapsed ticks.
        if let Some(refilled) = now.saturating_sub(s.last_refill).checked_div(config.refill_ticks) {
            if refilled > 0 {
                s.tokens = s.tokens.saturating_add(refilled.min(u32::MAX as u64) as u32);
                s.tokens = s.tokens.min(config.burst);
                s.last_refill += refilled * config.refill_ticks;
            }
        }
        if s.tokens == 0 {
            return Decision::Throttled {
                retry_at: s.last_refill + config.refill_ticks,
            };
        }
        s.tokens -= 1;
        Decision::Allowed
    }

    /// Records a wrong-readout failure at tick `now`. Returns the lockout
    /// expiry tick when this failure crossed the threshold.
    pub fn record_failure(&mut self, client: &str, now: u64) -> Option<u64> {
        let config = self.config;
        let s = self.state_mut(client, now);
        s.consecutive_failures += 1;
        if s.consecutive_failures < config.failure_threshold {
            return None;
        }
        // Threshold reached: lock out, doubling per prior lockout.
        let exponent = s.lockouts.min(63);
        let duration = config
            .base_lockout_ticks
            .saturating_mul(1u64 << exponent)
            .min(config.max_lockout_ticks);
        s.locked_until = now + duration;
        s.lockouts += 1;
        s.consecutive_failures = 0;
        self.total_lockouts += 1;
        hwm_trace::counter("throttle_lockouts", 1);
        Some(now + duration)
    }

    /// Records a successful request, clearing the failure streak.
    pub fn record_success(&mut self, client: &str) {
        if let Some(s) = self.clients.get_mut(client) {
            s.consecutive_failures = 0;
        }
    }

    /// Lockouts triggered across all clients so far.
    pub fn total_lockouts(&self) -> u64 {
        self.total_lockouts
    }

    /// Lockouts this client has triggered so far (the audit stream
    /// reports it with each `lockout` alert, so a dashboard can spot
    /// repeat offenders without replaying history).
    pub fn lockout_count(&self, client: &str) -> u32 {
        self.clients.get(client).map_or(0, |s| s.lockouts)
    }

    /// Current lockout expiry for a client, if one is active at `now`.
    pub fn locked_until(&self, client: &str, now: u64) -> Option<u64> {
        self.clients
            .get(client)
            .filter(|s| now < s.locked_until)
            .map(|s| s.locked_until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ThrottleConfig {
        ThrottleConfig {
            burst: 3,
            refill_ticks: 10,
            failure_threshold: 4,
            base_lockout_ticks: 100,
            max_lockout_ticks: 400,
        }
    }

    #[test]
    fn bucket_admits_burst_then_throttles() {
        let mut rl = RateLimiter::new(config());
        for _ in 0..3 {
            assert_eq!(rl.check("c", 0), Decision::Allowed);
        }
        assert_eq!(rl.check("c", 0), Decision::Throttled { retry_at: 10 });
        // One refill tick later a single token is back.
        assert_eq!(rl.check("c", 10), Decision::Allowed);
        assert_eq!(rl.check("c", 10), Decision::Throttled { retry_at: 20 });
        // A long idle period refills to the cap, not beyond.
        for _ in 0..3 {
            assert_eq!(rl.check("c", 1_000), Decision::Allowed);
        }
        assert!(matches!(rl.check("c", 1_000), Decision::Throttled { .. }));
    }

    #[test]
    fn clients_are_independent() {
        let mut rl = RateLimiter::new(config());
        for _ in 0..3 {
            assert_eq!(rl.check("a", 0), Decision::Allowed);
        }
        assert!(matches!(rl.check("a", 0), Decision::Throttled { .. }));
        assert_eq!(rl.check("b", 0), Decision::Allowed);
    }

    #[test]
    fn nth_failure_triggers_lockout() {
        let mut rl = RateLimiter::new(config());
        for i in 1..4 {
            assert_eq!(rl.record_failure("c", i), None, "failure {i}");
        }
        // The 4th (threshold) failure locks out for base_lockout_ticks.
        assert_eq!(rl.record_failure("c", 4), Some(104));
        assert_eq!(rl.check("c", 5), Decision::LockedOut { until: 104 });
        assert_eq!(rl.total_lockouts(), 1);
        assert_eq!(rl.lockout_count("c"), 1);
        assert_eq!(rl.lockout_count("stranger"), 0);
        assert_eq!(rl.locked_until("c", 5), Some(104));
        // After expiry the client is admitted again.
        assert_eq!(rl.check("c", 104), Decision::Allowed);
        assert_eq!(rl.locked_until("c", 104), None);
    }

    #[test]
    fn lockouts_double_then_cap() {
        let mut rl = RateLimiter::new(config());
        let mut now = 0;
        let mut durations = Vec::new();
        for _ in 0..4 {
            let until = loop {
                now += 1;
                if let Some(until) = rl.record_failure("c", now) {
                    break until;
                }
            };
            durations.push(until - now);
            now = until;
        }
        assert_eq!(durations, vec![100, 200, 400, 400], "double, then cap");
    }

    #[test]
    fn success_resets_the_streak() {
        let mut rl = RateLimiter::new(config());
        for i in 1..4 {
            assert_eq!(rl.record_failure("c", i), None);
        }
        rl.record_success("c");
        for i in 4..7 {
            assert_eq!(rl.record_failure("c", i), None, "streak restarted");
        }
        assert!(rl.record_failure("c", 7).is_some());
    }
}
