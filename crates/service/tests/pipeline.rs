//! Serving-path throughput levers must never change bytes: pipelined
//! submission (both transports), flush policies (including group
//! commit), and the explicit commit barrier all have to leave the same
//! journal, audit stream, det-class counters, and responses behind as
//! the plain serial per-event world.

use hwm_metering::{Designer, Foundry, LockOptions};
use hwm_service::registry::journal_digest;
use hwm_service::wire::readout_to_bits_string;
use hwm_service::{
    ActivationServer, Client, FlushPolicy, LocalClient, RecoverOptions, Registry, Request,
    Response, ServerConfig, TcpClient, TcpServer,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hwm-pipeline-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn designer(seed: u64) -> Designer {
    Designer::new(
        hwm_fsm::Stg::ring_counter(5, 2),
        LockOptions {
            added_modules: 2,
            black_holes: 1,
            ..LockOptions::default()
        },
        seed,
    )
    .expect("designer")
}

/// A deterministic mixed workload: registrations, unlocks (some with a
/// deliberately wrong readout), and status probes — enough journal and
/// audit traffic to expose any byte divergence.
fn workload(designer: &Designer, seed: u64) -> Vec<Request> {
    let mut foundry = Foundry::new(designer.blueprint().clone(), seed);
    let mut reqs = Vec::new();
    for i in 0..24 {
        let chip = foundry.fabricate_one();
        let readout = readout_to_bits_string(&chip.scan_flip_flops().0);
        reqs.push(Request::Register {
            client: format!("fab-{}", i % 3),
            ic: format!("die-{i}"),
            readout: readout.clone(),
        });
        if i % 4 == 0 {
            // A wrong readout: rejected, but journaled as a failure.
            let wrong: String = readout
                .chars()
                .map(|c| if c == '0' { '1' } else { '0' })
                .collect();
            reqs.push(Request::Unlock {
                client: format!("fab-{}", i % 3),
                readout: wrong,
            });
        }
        reqs.push(Request::Unlock {
            client: format!("fab-{}", i % 3),
            readout,
        });
        if i % 5 == 0 {
            reqs.push(Request::Status {
                client: format!("fab-{}", i % 3),
                ic: Some(format!("die-{i}")),
            });
        }
    }
    reqs
}

/// Runs the workload against a fresh file-backed server and returns the
/// evidence tuple: responses, journal digest (after the commit
/// barrier), det-class snapshot, audit stream.
fn run_variant(
    seed: u64,
    flush: FlushPolicy,
    depth: usize,
    tcp: bool,
) -> (Vec<Response>, u64, String, String) {
    let designer = designer(seed);
    let reqs = workload(&designer, seed + 1);
    let dir = scratch_dir();
    let path = dir.join("journal.jsonl");
    let registry = Registry::open_with(
        &path,
        RecoverOptions {
            flush,
            ..RecoverOptions::default()
        },
    )
    .expect("open journal");
    let server = Arc::new(ActivationServer::new(
        designer,
        registry,
        ServerConfig {
            flush,
            ..ServerConfig::default()
        },
    ));
    let responses = if tcp {
        let front = TcpServer::spawn(("127.0.0.1", 0), Arc::clone(&server)).expect("bind");
        let mut client = TcpClient::connect(front.addr()).expect("connect");
        let mut out = Vec::new();
        if depth > 1 {
            for window in reqs.chunks(depth) {
                out.extend(client.call_pipelined(window).expect("pipelined call"));
            }
        } else {
            for req in &reqs {
                out.push(client.call(req).expect("serial call"));
            }
        }
        drop(client);
        front.shutdown();
        out
    } else {
        let mut client = LocalClient::new(Arc::clone(&server));
        if depth > 1 {
            let mut out = Vec::new();
            for window in reqs.chunks(depth) {
                out.extend(client.call_pipelined(window).expect("pipelined call"));
            }
            out
        } else {
            reqs.iter().map(|r| client.call(r).expect("serial call")).collect()
        }
    };
    server.commit_journal().expect("commit barrier");
    let bytes = std::fs::read(&path).expect("read journal");
    let evidence = (
        responses,
        journal_digest(&bytes),
        server.snapshot().deterministic().to_prometheus(),
        server.audit_jsonl(),
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
    evidence
}

#[test]
fn levers_never_change_bytes_across_policies_depths_and_transports() {
    let baseline = run_variant(21, FlushPolicy::PerEvent, 1, false);
    for flush in [
        FlushPolicy::Buffered,
        FlushPolicy::Sync,
        FlushPolicy::group_commit(),
        FlushPolicy::GroupCommit { max_batch: 3 },
    ] {
        for depth in [1usize, 4, 7] {
            for tcp in [false, true] {
                let variant = run_variant(21, flush, depth, tcp);
                assert_eq!(
                    variant.0, baseline.0,
                    "responses diverged: {flush:?} depth {depth} tcp {tcp}"
                );
                assert_eq!(
                    variant.1, baseline.1,
                    "journal bytes diverged: {flush:?} depth {depth} tcp {tcp}"
                );
                assert_eq!(
                    variant.2, baseline.2,
                    "det counters diverged: {flush:?} depth {depth} tcp {tcp}"
                );
                assert_eq!(
                    variant.3, baseline.3,
                    "audit stream diverged: {flush:?} depth {depth} tcp {tcp}"
                );
            }
        }
    }
}

#[test]
fn group_commit_batches_and_commit_drains() {
    let designer = designer(33);
    let reqs = workload(&designer, 34);
    let dir = scratch_dir();
    let path = dir.join("journal.jsonl");
    let registry = Registry::open_with(
        &path,
        RecoverOptions {
            // A batch far larger than the workload: nothing may reach
            // the commit barrier on its own.
            flush: FlushPolicy::GroupCommit { max_batch: 100_000 },
            ..RecoverOptions::default()
        },
    )
    .expect("open journal");
    let server = Arc::new(ActivationServer::new(
        designer,
        registry,
        ServerConfig {
            flush: FlushPolicy::GroupCommit { max_batch: 100_000 },
            ..ServerConfig::default()
        },
    ));
    let mut client = LocalClient::new(Arc::clone(&server));
    for req in &reqs {
        let _ = client.call(req).expect("call");
    }
    let pending = server.with_registry(|r| r.pending_commits());
    assert!(pending > 0, "a giant batch must still be open");
    server.commit_journal().expect("commit barrier");
    assert_eq!(server.with_registry(|r| r.pending_commits()), 0);
    // After the barrier the file matches a per-event run bit for bit.
    let bytes = std::fs::read(&path).expect("read journal");
    let per_event = run_variant(33, FlushPolicy::PerEvent, 1, false);
    assert_eq!(journal_digest(&bytes), per_event.1);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_shutdown_joins_promptly() {
    let designer = designer(5);
    let server = Arc::new(ActivationServer::new(
        designer,
        Registry::in_memory(),
        ServerConfig::default(),
    ));
    let front =
        TcpServer::spawn_with_poll(("127.0.0.1", 0), Arc::clone(&server), 1).expect("bind");
    let mut client = TcpClient::connect(front.addr()).expect("connect");
    let _ = client
        .call(&Request::Metrics {
            client: "probe".into(),
        })
        .expect("probe");
    // Shutdown with an idle connection open: the accept poll and the
    // connection teardown must not stall the join.
    let t0 = Instant::now();
    front.shutdown();
    assert!(
        t0.elapsed().as_millis() < 2_000,
        "shutdown took {:?}",
        t0.elapsed()
    );
}
