//! Golden test pinning the JSONL registry journal bytes for a fixed
//! seed (the same contract style as the trace JSONL golden test): the
//! journal is the service's durable interchange format, so its bytes —
//! field order, event names, sequence numbering — must not drift
//! silently. Changing them invalidates every journal on disk and
//! requires a deliberate decision.

use hwm_metering::{Designer, Foundry, LockOptions};
use hwm_service::wire::readout_to_bits_string;
use hwm_service::{
    registry::journal_digest, ActivationServer, Client, LocalClient, Registry, Request,
    ServerConfig,
};
use std::sync::Arc;

const GOLDEN_SEED: u64 = 2024;

/// Drives a fixed Figure-2 scenario and returns the journal bytes.
fn golden_journal() -> Vec<u8> {
    let designer = Designer::new(
        hwm_fsm::Stg::ring_counter(5, 2),
        LockOptions {
            added_modules: 2,
            black_holes: 1,
            ..LockOptions::default()
        },
        GOLDEN_SEED,
    )
    .expect("designer");
    let mut foundry = Foundry::new(designer.blueprint().clone(), GOLDEN_SEED ^ 1);
    let server = Arc::new(ActivationServer::new(
        designer,
        Registry::in_memory(),
        ServerConfig::default(),
    ));
    let mut client = LocalClient::new(Arc::clone(&server));
    let mut readouts = Vec::new();
    while readouts.len() < 2 {
        let readout = readout_to_bits_string(&foundry.fabricate_one().scan_flip_flops().0);
        if !readouts.contains(&readout) {
            readouts.push(readout);
        }
    }
    let requests = vec![
        Request::Register {
            client: "fab".into(),
            ic: "ic-0".into(),
            readout: readouts[0].clone(),
        },
        Request::Register {
            client: "fab".into(),
            ic: "ic-1".into(),
            readout: readouts[1].clone(),
        },
        // A cloned die: same readout, new label.
        Request::Register {
            client: "fab".into(),
            ic: "ic-2".into(),
            readout: readouts[0].clone(),
        },
        Request::Unlock {
            client: "fab".into(),
            readout: readouts[0].clone(),
        },
        Request::RemoteDisable {
            client: "alice".into(),
            ic: "ic-1".into(),
        },
    ];
    for req in &requests {
        client.call(req).expect("transport");
    }
    server.with_registry(|r| r.journal_bytes().expect("in-memory journal").to_vec())
}

#[test]
fn journal_bytes_are_golden() {
    let journal = golden_journal();
    let text = String::from_utf8(journal.clone()).expect("journal is UTF-8");
    let expected = concat!(
        r#"{"event":"register","seq":1,"ic":"ic-0","client":"fab","readout":"010000000111011","group":0}"#,
        "\n",
        r#"{"event":"register","seq":2,"ic":"ic-1","client":"fab","readout":"101010000100111","group":0}"#,
        "\n",
        r#"{"event":"duplicate","seq":3,"ic":"ic-2","client":"fab","prior":"ic-0"}"#,
        "\n",
        r#"{"event":"unlock","seq":4,"ic":"ic-0","client":"fab","key_len":7}"#,
        "\n",
        r#"{"event":"disable","seq":5,"ic":"ic-1","client":"alice"}"#,
        "\n",
    );
    assert_eq!(text, expected, "journal schema drifted for seed {GOLDEN_SEED}");
}

#[test]
fn journal_digest_is_stable() {
    let journal = golden_journal();
    assert_eq!(
        journal_digest(&journal),
        9_119_796_695_514_773_374,
        "journal digest drifted for seed {GOLDEN_SEED}"
    );
}

#[test]
fn replay_of_the_golden_journal_is_byte_identical() {
    let journal = golden_journal();
    let text = String::from_utf8(journal.clone()).unwrap();
    let replayed = Registry::replay(&text).expect("golden journal replays");
    assert_eq!(
        replayed.journal_bytes().expect("in-memory journal"),
        journal.as_slice(),
        "replay must regenerate the journal byte for byte"
    );
}
