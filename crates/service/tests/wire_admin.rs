//! Property tests for the admin-plane wire frames (`Metrics`/`Audit`):
//! round trips are lossless for arbitrary contents — label values with
//! escapes, histogram shapes, audit fields — and the strict parser
//! rejects tampering, in the same contract style as the lock-database
//! codec tests. A fleet monitor and the server it polls may be different
//! builds; the frames must fail loudly on any drift, never guess.

use hwm_jsonio::Json;
use hwm_metrics::audit::{AuditEvent, AuditValue};
use hwm_metrics::{History, HistoryConfig, HistoryDump, MetricClass, MetricsRegistry, Snapshot};
use hwm_service::{Request, Response};
use proptest::prelude::*;

/// Names and label strings that stress escaping and sorting without
/// leaving what the registry accepts (the stub has no string_regex, so
/// strings are built from sampled character sets).
fn arb_label() -> impl Strategy<Value = String> {
    let charset: Vec<char> = "abcz019_./\"\\ -".chars().collect();
    prop::collection::vec(prop::sample::select(charset), 1..12)
        .prop_map(|cs| cs.into_iter().collect())
}

fn arb_metric_name() -> impl Strategy<Value = String> {
    let charset: Vec<char> = "abcxyz012_".chars().collect();
    prop::collection::vec(prop::sample::select(charset), 0..15)
        .prop_map(|cs| format!("m{}", cs.into_iter().collect::<String>()))
}

/// An arbitrary registry drive: counters, gauges and one histogram
/// family, snapshotted. Family names are compile-time constants (the
/// registry takes `&'static str` on purpose), so the arbitrariness lives
/// in the label values, counts and histogram shapes. Building through
/// the real registry (rather than hand-assembling a `Snapshot`) keeps
/// the test honest about what can actually appear on the wire.
fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    let counter_names: Vec<&'static str> = vec!["c_requests", "c_events", "c_errors"];
    let gauge_names: Vec<&'static str> = vec!["g_fleet", "g_ticks"];
    (
        prop::collection::vec(
            (prop::sample::select(counter_names), arb_label(), 0u64..1000),
            0..8,
        ),
        prop::collection::vec(
            (prop::sample::select(gauge_names), any::<bool>(), 0u64..u64::MAX),
            0..6,
        ),
        prop::collection::vec(0u64..3_000_000, 0..12),
    )
        .prop_map(|(counters, gauges, observations)| {
            let registry = MetricsRegistry::default();
            for (name, label, delta) in counters {
                registry.inc(name, &[("label", &label)], delta);
            }
            for (name, timing, value) in gauges {
                let class = if timing { MetricClass::Timing } else { MetricClass::Det };
                registry.set_gauge(name, &[], class, value);
            }
            for value in observations {
                registry.observe(
                    "h_latency",
                    &[],
                    MetricClass::Timing,
                    hwm_metrics::LATENCY_BUCKETS_NS,
                    value,
                );
            }
            registry.snapshot()
        })
}

/// An arbitrary sampled history: a sequence of snapshots of a driven
/// registry, recorded at increasing ticks through the real `History`
/// ring (so capacity eviction and tick dedup behave as in the server).
fn arb_history_dump() -> impl Strategy<Value = HistoryDump> {
    (
        1u64..8,
        1usize..16,
        prop::collection::vec((1u64..5, 0u64..100, arb_label()), 0..12),
    )
        .prop_map(|(stride, capacity, steps)| {
            let registry = MetricsRegistry::default();
            let mut history = History::new(HistoryConfig { stride, capacity });
            let mut tick = 0;
            for (gap, delta, label) in steps {
                tick += gap * stride;
                registry.inc("c_requests", &[("label", &label)], delta);
                registry.set_gauge("g_fleet", &[], MetricClass::Det, delta);
                history.record(tick, &registry.snapshot());
            }
            history.dump(None)
        })
}

fn arb_audit_value() -> impl Strategy<Value = AuditValue> {
    prop_oneof![
        arb_label().prop_map(AuditValue::Str),
        any::<u64>().prop_map(AuditValue::U64),
    ]
}

fn arb_audit_events() -> impl Strategy<Value = Vec<AuditEvent>> {
    prop::collection::vec(
        (
            any::<u64>(),
            arb_metric_name(),
            prop::collection::vec((arb_metric_name(), arb_audit_value()), 0..4),
        ),
        0..5,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (tick, kind, mut fields))| {
                // The codec rejects duplicate keys (and the reserved
                // header names) — generate what a real log contains.
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                fields.dedup_by(|a, b| a.0 == b.0);
                fields.retain(|(k, _)| {
                    !matches!(k.as_str(), "schema" | "seq" | "tick" | "kind")
                });
                AuditEvent { seq: i as u64, tick, kind, fields }
            })
            .collect()
    })
}

/// Round trip through the textual frame payload, exactly as the TCP
/// transport does it.
fn reparse(j: &Json) -> Json {
    Json::parse(&j.to_string()).expect("frame text reparses")
}

proptest! {
    #[test]
    fn admin_requests_roundtrip(
        client in arb_label(),
        // (flag, value) maps to Option: the stub has no option::of.
        since in (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v)),
    ) {
        for req in [
            Request::Metrics { client: client.clone() },
            Request::Audit { client: client.clone(), since },
            Request::History { client: client.clone(), window: since },
        ] {
            let back = Request::from_json(&reparse(&req.to_json())).unwrap();
            prop_assert_eq!(back, req);
        }
    }

    #[test]
    fn metrics_responses_roundtrip(snapshot in arb_snapshot()) {
        let resp = Response::Metrics { snapshot };
        let back = Response::from_json(&reparse(&resp.to_json())).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn audit_responses_roundtrip(events in arb_audit_events(), next in any::<u64>()) {
        let resp = Response::Audit { events, next };
        let back = Response::from_json(&reparse(&resp.to_json())).unwrap();
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn history_responses_roundtrip(history in arb_history_dump()) {
        let resp = Response::History { history };
        let back = Response::from_json(&reparse(&resp.to_json())).unwrap();
        prop_assert_eq!(back, resp);
    }

    /// Reordering a history's samples breaks the strictly-increasing
    /// tick invariant and fails the parse.
    #[test]
    fn history_responses_reject_disordered_samples(a in 1u64..1000, b in 1001u64..2000) {
        let text = format!(
            "{{\"type\":\"history\",\"history\":{{\"schema\":1,\"stride\":4,\"capacity\":8,\
             \"series\":[{{\"name\":\"c\",\"labels\":[],\"kind\":\"counter\",\
             \"samples\":[[{b},1],[{a},2]]}}]}}}}"
        );
        let j = Json::parse(&text).unwrap();
        prop_assert!(Response::from_json(&j).is_err());
    }

    /// Injecting an unknown field anywhere in an admin frame fails the
    /// parse — the strict contract that catches version skew.
    #[test]
    fn admin_frames_reject_unknown_fields(client in arb_label(), snapshot in arb_snapshot()) {
        let frames = [
            Request::Metrics { client: client.clone() }.to_json(),
            Request::Audit { client: client.clone(), since: Some(7) }.to_json(),
            Request::History { client, window: Some(64) }.to_json(),
            Response::Metrics { snapshot }.to_json(),
            Response::Audit { events: Vec::new(), next: 0 }.to_json(),
            Response::History { history: HistoryDump::default() }.to_json(),
        ];
        for (i, frame) in frames.into_iter().enumerate() {
            let mut fields = match frame {
                Json::Obj(fields) => fields,
                _ => unreachable!("frames are objects"),
            };
            fields.push(("smuggled".into(), Json::U64(1)));
            let tampered = Json::Obj(fields);
            let rejected = if i < 3 {
                Request::from_json(&tampered).is_err()
            } else {
                Response::from_json(&tampered).is_err()
            };
            prop_assert!(rejected, "frame {i} accepted an unknown field");
        }
    }

    /// Wrong-type `since` (string instead of integer) fails loudly.
    #[test]
    fn audit_requests_reject_wrong_since_type(client in arb_label(), s in arb_label()) {
        let tampered = Json::obj(vec![
            ("type", Json::Str("audit".into())),
            ("client", Json::Str(client)),
            ("since", Json::Str(s)),
        ]);
        prop_assert!(Request::from_json(&tampered).is_err());
    }

    /// Tampering with a snapshot's internal consistency (histogram count
    /// not matching its buckets) fails the response parse.
    #[test]
    fn metrics_responses_reject_inconsistent_histograms(bump in 1u64..100) {
        let registry = MetricsRegistry::default();
        registry.observe("h", &[], MetricClass::Timing, hwm_metrics::LATENCY_BUCKETS_NS, 42);
        let resp = Response::Metrics { snapshot: registry.snapshot() };
        let text = resp.to_json().to_string();
        let tampered = text.replacen("\"count\":1", &format!("\"count\":{}", 1 + bump), 1);
        prop_assert!(tampered != text, "tamper target must exist in {text}");
        let j = Json::parse(&tampered).unwrap();
        prop_assert!(Response::from_json(&j).is_err());
    }
}
