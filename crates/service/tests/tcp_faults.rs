//! TCP-transport fault injection: the socket-level counterparts of the
//! in-process crash simulation (`tests/sim.rs`).
//!
//! Over real sockets a fault kills the *connection*, not the process, so
//! the recovery story the tests pin is the client's: a dropped or torn
//! request frame is never dispatched, and reconnecting + retrying the
//! same request converges to exactly the fault-free outcome. Delayed
//! accepts only slow the handshake down. Shutdown must join every
//! handler thread even while a client still holds an idle connection
//! open (the listener-leak regression).

use hwm_metering::{Designer, Foundry, LockOptions};
use hwm_service::wire::readout_to_bits_string;
use hwm_service::{
    ActivationServer, Client, FaultKind, FaultPlan, Registry, Request, Response, ServerConfig,
    TcpClient, TcpFaults, TcpServer,
};
use std::sync::Arc;

const SEED: u64 = 2024;

fn designer() -> Designer {
    Designer::new(
        hwm_fsm::Stg::ring_counter(5, 2),
        LockOptions {
            added_modules: 2,
            black_holes: 1,
            ..LockOptions::default()
        },
        SEED,
    )
    .expect("designer")
}

fn server() -> Arc<ActivationServer> {
    Arc::new(ActivationServer::new(
        designer(),
        Registry::in_memory(),
        ServerConfig::default(),
    ))
}

fn one_readout() -> String {
    let mut foundry = Foundry::new(designer().blueprint().clone(), SEED ^ 1);
    readout_to_bits_string(&foundry.fabricate_one().scan_flip_flops().0)
}

fn register(readout: &str) -> Request {
    Request::Register {
        client: "fab".into(),
        ic: "ic-0".into(),
        readout: readout.into(),
    }
}

/// A plan whose first `crashes` eligible indices all fire (the tests
/// index connections/frames from zero).
fn plan_at(kind: FaultKind, ticks: &[u64]) -> FaultPlan {
    FaultPlan::new(SEED, kind, ticks, ticks.len())
}

#[test]
fn delayed_accepts_slow_the_handshake_but_lose_nothing() {
    let server = server();
    let faults = TcpFaults::new(plan_at(FaultKind::DelayedAccept, &[0, 1]));
    let tcp = TcpServer::spawn_with_faults("127.0.0.1:0", Arc::clone(&server), faults)
        .expect("bind");
    let readout = one_readout();
    // Both delayed connections still serve their requests completely.
    for req in [register(&readout), Request::Unlock { client: "fab".into(), readout: readout.clone() }] {
        let mut client = TcpClient::connect(tcp.addr()).expect("connect");
        let resp = client.call(&req).expect("delayed accept must still serve");
        assert!(
            matches!(resp, Response::Registered { .. } | Response::Key { .. }),
            "unexpected response under delayed accept: {resp:?}"
        );
    }
    tcp.shutdown();
    let status = server.status();
    assert_eq!((status.registered, status.unlocked), (1, 1));
}

#[test]
fn dropped_request_frame_is_never_dispatched_and_retry_recovers() {
    let server = server();
    // Frame 0 (the first request on the wire) is received whole, then
    // dropped on the floor; the connection dies without dispatching it.
    let faults = TcpFaults::new(plan_at(FaultKind::ConnDrop, &[0]));
    let tcp = TcpServer::spawn_with_faults("127.0.0.1:0", Arc::clone(&server), faults)
        .expect("bind");
    let readout = one_readout();
    let mut client = TcpClient::connect(tcp.addr()).expect("connect");
    client
        .call(&register(&readout))
        .expect_err("the dropped frame must not produce a response");
    assert_eq!(server.status().registered, 0, "dropped frame was dispatched");
    // Reconnect and retry: exactly the fault-free outcome.
    let mut client = TcpClient::connect(tcp.addr()).expect("reconnect");
    let resp = client.call(&register(&readout)).expect("retry");
    assert!(matches!(resp, Response::Registered { .. }), "retry failed: {resp:?}");
    let resp = client
        .call(&Request::Unlock {
            client: "fab".into(),
            readout,
        })
        .expect("unlock");
    assert!(matches!(resp, Response::Key { .. }), "unlock failed: {resp:?}");
    tcp.shutdown();
    let status = server.status();
    assert_eq!((status.registered, status.unlocked), (1, 1));
}

#[test]
fn torn_request_frame_is_never_dispatched_and_retry_recovers() {
    let server = server();
    // Frame 0 dies mid-wire: the handler reads two bytes of the length
    // prefix and hangs up.
    let faults = TcpFaults::new(plan_at(FaultKind::ShortRead, &[0]));
    let tcp = TcpServer::spawn_with_faults("127.0.0.1:0", Arc::clone(&server), faults)
        .expect("bind");
    let readout = one_readout();
    let mut client = TcpClient::connect(tcp.addr()).expect("connect");
    client
        .call(&register(&readout))
        .expect_err("the torn frame must not produce a response");
    assert_eq!(server.status().registered, 0, "torn frame was dispatched");
    let mut client = TcpClient::connect(tcp.addr()).expect("reconnect");
    let resp = client.call(&register(&readout)).expect("retry");
    assert!(matches!(resp, Response::Registered { .. }), "retry failed: {resp:?}");
    tcp.shutdown();
    assert_eq!(server.status().registered, 1);
}

#[test]
fn shutdown_joins_cleanly_with_an_idle_connection_open() {
    let server = server();
    let tcp = TcpServer::spawn("127.0.0.1:0", Arc::clone(&server)).expect("bind");
    // One served request, then the client goes idle without hanging up —
    // its handler thread is parked in read_frame.
    let readout = one_readout();
    let mut client = TcpClient::connect(tcp.addr()).expect("connect");
    client.call(&register(&readout)).expect("register");
    // Shutdown must unblock that handler and join it (the regression was
    // a leaked listener/handler thread that hung the join forever). The
    // test's own timeout is the watchdog.
    tcp.shutdown();
    assert_eq!(server.status().registered, 1);
    // The held socket is dead afterwards.
    client
        .call(&Request::Status {
            client: "fab".into(),
            ic: None,
        })
        .expect_err("connection must be torn down by shutdown");
}
