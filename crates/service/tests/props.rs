//! Property-based tests of the serving layer's crash-safety invariants:
//! the rate limiter (token bucket + exponential lockout) and the journal
//! snapshot/compaction machinery.
//!
//! The limiter properties run the real [`RateLimiter`] against a tiny
//! reference model of the parts with exact contracts (lockout lifecycle,
//! failure streaks) plus conservation bounds for the token bucket. The
//! registry properties drive a file-backed, randomly-compacting registry
//! and an in-memory twin through the same operation sequence and require
//! the recovered world (snapshot + journal tail) to be state- and
//! digest-equivalent to a strict replay of the twin's full journal.

use hwm_service::{Decision, RateLimiter, RecoverOptions, Registry, ThrottleConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique per-case scratch directories (proptest runs many cases per
/// process).
static CASE: AtomicU64 = AtomicU64::new(0);

fn case_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hwm-props-{name}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const CLIENTS: [&str; 3] = ["alpha", "beta", "gamma"];

/// Expected duration of a client's next lockout: doubling per prior
/// lockout, capped.
fn expected_duration(config: &ThrottleConfig, prior_lockouts: u32) -> u64 {
    config
        .base_lockout_ticks
        .saturating_mul(1u64 << prior_lockouts.min(63))
        .min(config.max_lockout_ticks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lockout lifecycle is exact: a client is refused with `LockedOut`
    /// precisely while a modeled lockout is pending, every fresh lockout
    /// lasts `min(base * 2^k, max)` ticks, and admissions never exceed
    /// the bucket's conservation bound (burst + elapsed refills).
    #[test]
    fn limiter_lockouts_are_exact_and_tokens_conserved(
        burst in 1u32..6,
        refill_ticks in 1u64..5,
        failure_threshold in 1u32..5,
        base in 4u64..40,
        cap_doublings in 0u32..4,
        ops in prop::collection::vec((0u8..3, 0usize..3, 0u64..4), 1..120),
    ) {
        let config = ThrottleConfig {
            burst,
            refill_ticks,
            failure_threshold,
            base_lockout_ticks: base,
            max_lockout_ticks: base << cap_doublings,
        };
        let mut limiter = RateLimiter::new(config);
        let mut now = 1u64;
        // The reference model: per-client lockout expiry, failure streak,
        // prior-lockout count, and token-conservation bookkeeping.
        let mut locked_until: HashMap<&str, u64> = HashMap::new();
        let mut streak: HashMap<&str, u32> = HashMap::new();
        let mut lockouts: HashMap<&str, u32> = HashMap::new();
        let mut admitted: HashMap<&str, u64> = HashMap::new();
        let mut first_seen: HashMap<&str, u64> = HashMap::new();

        for (op, who, dt) in ops {
            now += dt; // logical clock never goes backward
            let client = CLIENTS[who];
            first_seen.entry(client).or_insert(now);
            match op {
                // Admission check.
                0 => match limiter.check(client, now) {
                    Decision::Allowed => {
                        let until = locked_until.get(client).copied().unwrap_or(0);
                        prop_assert!(now >= until, "admitted during a lockout");
                        *admitted.entry(client).or_insert(0) += 1;
                    }
                    Decision::Throttled { retry_at } => {
                        prop_assert!(retry_at > now, "retry tick must be in the future");
                    }
                    Decision::LockedOut { until } => {
                        let expected = locked_until.get(client).copied().unwrap_or(0);
                        prop_assert_eq!(until, expected, "phantom or stale lockout");
                        prop_assert!(now < until, "expired lockout still refusing");
                    }
                },
                // Wrong-readout failure, as the server reports it: only
                // after an admitted request.
                1 => {
                    if limiter.check(client, now) == Decision::Allowed {
                        *admitted.entry(client).or_insert(0) += 1;
                        let fired = limiter.record_failure(client, now);
                        let s = streak.entry(client).or_insert(0);
                        *s += 1;
                        if *s >= failure_threshold {
                            let k = *lockouts.entry(client).or_insert(0);
                            let until = now + expected_duration(&config, k);
                            prop_assert_eq!(fired, Some(until), "lockout duration law");
                            locked_until.insert(client, until);
                            *lockouts.get_mut(client).unwrap() += 1;
                            *s = 0;
                        } else {
                            prop_assert_eq!(fired, None, "lockout fired early");
                        }
                    }
                }
                // Success clears the streak.
                _ => {
                    limiter.record_success(client);
                    streak.insert(client, 0);
                }
            }
        }
        // Conservation: a client can never have been admitted more often
        // than its initial burst plus one token per elapsed refill period.
        for (client, count) in &admitted {
            let elapsed = now - first_seen[client];
            prop_assert!(
                *count <= u64::from(burst) + elapsed / refill_ticks,
                "{client} admitted {count} times with burst {burst} over {elapsed} ticks"
            );
        }
        // The global lockout counter is the sum of the per-client ones.
        let total: u64 = CLIENTS
            .iter()
            .map(|c| u64::from(limiter.lockout_count(c)))
            .sum();
        prop_assert_eq!(limiter.total_lockouts(), total);
    }

    /// Lockout durations are monotone: each consecutive lockout of one
    /// client lasts at least as long as the previous, doubles until the
    /// cap, and the client is always admitted once the lockout expires.
    #[test]
    fn lockouts_double_monotonically_and_expire(
        base in 2u64..50,
        cap_doublings in 0u32..6,
        threshold in 1u32..6,
        rounds in 1usize..8,
    ) {
        let config = ThrottleConfig {
            burst: u32::MAX, // never throttled: isolate the lockout path
            refill_ticks: 1,
            failure_threshold: threshold,
            base_lockout_ticks: base,
            max_lockout_ticks: base << cap_doublings,
        };
        let mut limiter = RateLimiter::new(config);
        let mut now = 1u64;
        let mut durations = Vec::new();
        for k in 0..rounds {
            let until = loop {
                now += 1;
                prop_assert_eq!(limiter.check("c", now), Decision::Allowed);
                if let Some(until) = limiter.record_failure("c", now) {
                    break until;
                }
            };
            durations.push(until - now);
            prop_assert_eq!(until - now, expected_duration(&config, k as u32));
            // Locked for the whole window, admitted at the boundary.
            prop_assert_eq!(limiter.check("c", until - 1), Decision::LockedOut { until });
            prop_assert_eq!(limiter.locked_until("c", until - 1), Some(until));
            now = until;
            prop_assert_eq!(limiter.check("c", now), Decision::Allowed);
            prop_assert_eq!(limiter.locked_until("c", now), None);
        }
        prop_assert!(
            durations.windows(2).all(|w| w[0] <= w[1]),
            "durations shrank: {durations:?}"
        );
        prop_assert!(durations.iter().all(|d| *d <= config.max_lockout_ticks));
    }

    /// Snapshot + journal-tail recovery is equivalent to a strict replay
    /// of the full journal, for arbitrary operation sequences and
    /// arbitrary compaction points — and the rolling digest survives
    /// compaction unchanged.
    #[test]
    fn compaction_round_trips_for_arbitrary_histories(
        compact_every in 0u64..5,
        ops in prop::collection::vec((0u8..4, 0usize..8, 0usize..6), 1..60),
    ) {
        let dir = case_dir("compact");
        let path = dir.join("journal.jsonl");
        let mut disk = Registry::open_with(
            &path,
            RecoverOptions {
                compact_every,
                ..RecoverOptions::default()
            },
        )
        .unwrap();
        let mut mem = Registry::in_memory();
        for (op, ic_idx, readout_idx) in ops {
            let ic = format!("ic-{ic_idx}");
            let readout = format!("0101-{readout_idx}");
            // Apply the same operation to both worlds; they must agree on
            // the outcome (including rejections).
            let (a, b) = match op {
                0 => (
                    disk.register("fab", &ic, &readout, 0).map_err(|e| e.to_string()),
                    mem.register("fab", &ic, &readout, 0).map_err(|e| e.to_string()),
                ),
                1 => (
                    disk.mark_unlocked(&ic, 4, "fab").map_err(|e| e.to_string()),
                    mem.mark_unlocked(&ic, 4, "fab").map_err(|e| e.to_string()),
                ),
                2 => (
                    disk.mark_disabled(&ic, "alice").map_err(|e| e.to_string()),
                    mem.mark_disabled(&ic, "alice").map_err(|e| e.to_string()),
                ),
                // An explicit compaction point — a no-op for the twin.
                _ => (disk.compact().map_err(|e| e.to_string()), Ok(())),
            };
            prop_assert_eq!(a, b, "file-backed and in-memory worlds diverged");
        }
        let digest_before = disk.rolling_digest();
        drop(disk);

        let full = mem.journal_bytes().unwrap().to_vec();
        let replayed = Registry::replay(std::str::from_utf8(&full).unwrap()).unwrap();
        let recovered = Registry::open(&path).unwrap();
        prop_assert_eq!(recovered.records(), replayed.records());
        prop_assert_eq!(recovered.counts(), replayed.counts());
        prop_assert_eq!(recovered.clones(), replayed.clones());
        prop_assert_eq!(recovered.rolling_digest(), replayed.rolling_digest());
        prop_assert_eq!(recovered.rolling_digest(), digest_before);
        prop_assert_eq!(
            recovered.snapshot_events() + recovered.replayed_events(),
            replayed.journal_len(),
            "snapshot + tail must cover every journaled event"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Returns `j` with one unknown field injected into its `trace` object
/// — the strict codec must reject the result.
fn tamper_trace_context(j: &hwm_jsonio::Json) -> hwm_jsonio::Json {
    use hwm_jsonio::Json;
    match j {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(k, v)| {
                    if k == "trace" {
                        if let Json::Obj(inner) = v {
                            let mut inner = inner.clone();
                            inner.push(("wat".into(), Json::U64(1)));
                            return (k.clone(), Json::Obj(inner));
                        }
                    }
                    (k.clone(), v.clone())
                })
                .collect(),
        ),
        other => other.clone(),
    }
}

proptest! {
    /// The traced-request envelope round-trips for any request shape
    /// and any trace context; an untraced envelope serializes exactly
    /// like the bare request (old peers parse it unchanged); and a
    /// tampered trace context is rejected by the strict codec.
    #[test]
    fn traced_request_envelope_roundtrips_and_rejects_tampering(
        trace_id in any::<u64>(),
        parent in any::<u64>(),
        tick in any::<u64>(),
        has_trace in any::<bool>(),
        which in 0usize..4,
        client_idx in 0usize..3,
        ic_idx in 0usize..3,
    ) {
        use hwm_service::{Request, TracedRequest};
        use hwm_trace::TraceContext;

        const ICS: [&str; 3] = ["ic-0", "ic-7", "wafer9"];
        let client = CLIENTS[client_idx].to_string();
        let ic = ICS[ic_idx].to_string();
        let req = match which {
            0 => Request::Register {
                client: client.clone(),
                ic: ic.clone(),
                readout: "0101".into(),
            },
            1 => Request::Unlock { client: client.clone(), readout: "0101".into() },
            2 => Request::RemoteDisable { client: client.clone(), ic: ic.clone() },
            _ => Request::Status { client: client.clone(), ic: Some(ic.clone()) },
        };
        let trace = has_trace.then_some(TraceContext { trace_id, parent_span: parent, tick });
        let traced = TracedRequest { req, trace };
        let j = traced.to_json();
        let back = TracedRequest::from_json(&j).expect("round-trip parses");
        prop_assert_eq!(back.to_json().to_string(), j.to_string());
        prop_assert_eq!(back.trace.is_some(), has_trace);
        if has_trace {
            let tampered = tamper_trace_context(&j);
            prop_assert!(
                TracedRequest::from_json(&tampered).is_err(),
                "unknown trace field must be rejected"
            );
        } else {
            prop_assert_eq!(
                j.to_string(),
                traced.req.to_json().to_string(),
                "untraced envelope must serialize like the bare request"
            );
        }
    }
}

proptest! {
    /// A pipelined burst of frames, split at arbitrary byte boundaries,
    /// decodes through [`FrameDecoder`] to exactly the same payload
    /// sequence a whole-buffer `read_frame` loop produces — the wire
    /// contract both transports' batched read paths rely on.
    #[test]
    fn frame_stream_decodes_identically_for_any_split(
        which in prop::collection::vec(0usize..4, 1..12),
        cuts in prop::collection::vec(any::<u16>(), 0..24),
        seed in any::<u64>(),
    ) {
        use hwm_service::wire::{read_frame, write_frame, FrameDecoder};
        use hwm_service::Request;

        let reqs: Vec<Request> = which
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let client = CLIENTS[i % CLIENTS.len()].to_string();
                let ic = format!("die-{}", seed.wrapping_add(i as u64) % 97);
                match w {
                    0 => Request::Register { client, ic, readout: "010101".into() },
                    1 => Request::Unlock { client, readout: "101010".into() },
                    2 => Request::RemoteDisable { client, ic },
                    _ => Request::Status { client, ic: Some(ic) },
                }
            })
            .collect();
        let mut stream = Vec::new();
        for req in &reqs {
            write_frame(&mut stream, &req.to_json()).expect("encode");
        }

        // Reference: drain the whole buffer through read_frame.
        let mut whole = Vec::new();
        let mut cursor = stream.as_slice();
        while let Some(p) = read_frame(&mut cursor).expect("read_frame") {
            whole.push(p.to_string());
        }
        prop_assert_eq!(whole.len(), reqs.len());

        // Candidate: the same bytes, chopped at arbitrary boundaries.
        let mut bounds: Vec<usize> =
            cuts.iter().map(|c| *c as usize % (stream.len() + 1)).collect();
        bounds.push(0);
        bounds.push(stream.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut decoder = FrameDecoder::new();
        let mut split = Vec::new();
        for pair in bounds.windows(2) {
            decoder.extend(&stream[pair[0]..pair[1]]);
            while let Some(p) = decoder.next_frame().expect("decode") {
                split.push(p.to_string());
            }
        }
        prop_assert_eq!(decoder.pending(), 0);
        prop_assert_eq!(split, whole);
    }
}
