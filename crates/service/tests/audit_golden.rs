//! Golden test pinning the `audit.jsonl` alert-stream bytes for a fixed
//! seed, in the same contract style as the registry-journal golden test:
//! the audit stream is the fleet-forensics interchange format (clone
//! evidence, lockouts, remote disables), so its bytes — field order,
//! event kinds, schema and sequence numbering — must not drift silently.
//!
//! Audit events carry only the logical tick, never wall-clock time,
//! which is what makes this test possible at all.

use hwm_metering::{Designer, Foundry, LockOptions};
use hwm_metrics::audit::AuditLog;
use hwm_service::wire::readout_to_bits_string;
use hwm_service::{ActivationServer, Client, LocalClient, Registry, Request, ServerConfig};
use std::sync::Arc;

const GOLDEN_SEED: u64 = 2024;

/// Drives the clone-registration scenario (two honest dies, one cloned
/// die, an unlock, a remote disable) and returns the audit JSONL.
fn golden_audit() -> String {
    let designer = Designer::new(
        hwm_fsm::Stg::ring_counter(5, 2),
        LockOptions {
            added_modules: 2,
            black_holes: 1,
            ..LockOptions::default()
        },
        GOLDEN_SEED,
    )
    .expect("designer");
    let mut foundry = Foundry::new(designer.blueprint().clone(), GOLDEN_SEED ^ 1);
    let server = Arc::new(ActivationServer::new(
        designer,
        Registry::in_memory(),
        ServerConfig::default(),
    ));
    let mut client = LocalClient::new(Arc::clone(&server));
    let mut readouts = Vec::new();
    while readouts.len() < 2 {
        let readout = readout_to_bits_string(&foundry.fabricate_one().scan_flip_flops().0);
        if !readouts.contains(&readout) {
            readouts.push(readout);
        }
    }
    let requests = vec![
        Request::Register {
            client: "fab".into(),
            ic: "ic-0".into(),
            readout: readouts[0].clone(),
        },
        Request::Register {
            client: "fab".into(),
            ic: "ic-1".into(),
            readout: readouts[1].clone(),
        },
        // A cloned die: same readout, new label — the paper's
        // registration-time clone evidence.
        Request::Register {
            client: "fab".into(),
            ic: "ic-2".into(),
            readout: readouts[0].clone(),
        },
        Request::Unlock {
            client: "fab".into(),
            readout: readouts[0].clone(),
        },
        Request::RemoteDisable {
            client: "alice".into(),
            ic: "ic-1".into(),
        },
    ];
    for req in &requests {
        client.call(req).expect("transport");
    }
    server.audit_jsonl()
}

#[test]
fn audit_bytes_are_golden() {
    let text = golden_audit();
    let expected = concat!(
        r#"{"schema":1,"seq":0,"tick":3,"kind":"duplicate_readout","ic":"ic-2","client":"fab","prior":"ic-0"}"#,
        "\n",
        r#"{"schema":1,"seq":1,"tick":5,"kind":"remote_disable","ic":"ic-1","client":"alice"}"#,
        "\n",
    );
    assert_eq!(text, expected, "audit schema drifted for seed {GOLDEN_SEED}");
}

#[test]
fn golden_audit_reparses_losslessly() {
    let text = golden_audit();
    let events = AuditLog::parse_jsonl(&text).expect("golden audit reparses");
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].kind, "duplicate_readout");
    assert_eq!(events[0].str_field("prior"), Some("ic-0"));
    assert_eq!(events[1].kind, "remote_disable");
    // Re-serialising regenerates the bytes exactly.
    let mut round = String::new();
    for e in &events {
        round.push_str(&e.to_json().to_string());
        round.push('\n');
    }
    assert_eq!(round, text);
}

#[test]
fn lockout_alerts_reach_the_audit_stream() {
    let designer = Designer::new(
        hwm_fsm::Stg::ring_counter(5, 2),
        LockOptions {
            added_modules: 2,
            ..LockOptions::default()
        },
        GOLDEN_SEED,
    )
    .expect("designer");
    let width = designer.blueprint().scan_layout().total();
    let server = Arc::new(ActivationServer::new(
        designer,
        Registry::in_memory(),
        ServerConfig::default(),
    ));
    let mut client = LocalClient::new(Arc::clone(&server));
    let wrong = "0".repeat(width);
    for _ in 0..8 {
        client
            .call(&Request::Unlock {
                client: "mallory".into(),
                readout: wrong.clone(),
            })
            .expect("transport");
    }
    let events = AuditLog::parse_jsonl(&server.audit_jsonl()).expect("audit parses");
    assert!(
        events.iter().any(|e| e.kind == "lockout"
            && e.str_field("client") == Some("mallory")
            && e.u64_field("count").is_some()),
        "repeated wrong readouts must raise a lockout alert: {events:?}"
    );
}
