//! Deterministic crash/restart simulation at the service level.
//!
//! A seeded workload is driven twice: once against a fault-free in-memory
//! **oracle**, once against a file-backed server that is killed at
//! fault-plan-chosen ticks (torn journal writes, disk-full appends,
//! dropped/short-read request frames) and restarted via the recovery path
//! (`Registry::open_with` + `AuditLog::resume_file` +
//! `ActivationServer::resume`). After every fault plan, the recovered
//! world must match the oracle **exactly**: delivered responses, registry
//! records and counts, clone evidence, the rolling journal digest, the
//! audit stream bytes, and the summed deterministic metrics counters.
//! Keys are never lost, no duplicate IC is ever re-admitted, and clone
//! evidence survives every restart.
//!
//! The larger randomized-workload harness lives in `hwm_bench::sim`
//! (`crash_sim`); this test keeps the service crate self-checking with a
//! small handcrafted schedule.

use hwm_metering::{Designer, Foundry, LockOptions};
use hwm_metrics::{AuditLog, MetricKind, Snapshot};
use hwm_service::wire::readout_to_bits_string;
use hwm_service::{
    ActivationServer, ArmedFault, Client, ErrorCode, FaultInjector, FaultKind, FaultPlan,
    LocalClient, RecoverOptions, Registry, Request, Response, ServerConfig,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SEED: u64 = 2024;

fn designer() -> Designer {
    Designer::new(
        hwm_fsm::Stg::ring_counter(5, 2),
        LockOptions {
            added_modules: 2,
            black_holes: 1,
            ..LockOptions::default()
        },
        SEED,
    )
    .expect("designer")
}

/// The seeded workload: registrations, a clone attempt, wrong-readout
/// guesses (below the lockout threshold), unlocks, a disable, a
/// re-unlock, and status checks.
fn schedule() -> Vec<Request> {
    let mut foundry = Foundry::new(designer().blueprint().clone(), SEED ^ 1);
    let mut readouts: Vec<String> = Vec::new();
    while readouts.len() < 5 {
        let r = readout_to_bits_string(&foundry.fabricate_one().scan_flip_flops().0);
        if !readouts.contains(&r) {
            readouts.push(r);
        }
    }
    let mut reqs = Vec::new();
    for (i, r) in readouts.iter().enumerate() {
        reqs.push(Request::Register {
            client: "fab".into(),
            ic: format!("ic-{i}"),
            readout: r.clone(),
        });
    }
    // A cloned die: an already-registered readout under a new label.
    reqs.push(Request::Register {
        client: "fab".into(),
        ic: "ic-clone".into(),
        readout: readouts[0].clone(),
    });
    // A wrong-readout guess (stays far below the lockout threshold).
    let mut wrong: String = readouts[0].clone();
    let flipped = if wrong.starts_with('0') { "1" } else { "0" };
    wrong.replace_range(0..1, flipped);
    reqs.push(Request::Unlock {
        client: "mallory".into(),
        readout: wrong,
    });
    for r in &readouts {
        reqs.push(Request::Unlock {
            client: "fab".into(),
            readout: r.clone(),
        });
    }
    reqs.push(Request::RemoteDisable {
        client: "alice".into(),
        ic: "ic-1".into(),
    });
    // Unlocking an unlocked die again must keep failing identically.
    reqs.push(Request::Unlock {
        client: "fab".into(),
        readout: readouts[0].clone(),
    });
    for i in 0..readouts.len() {
        reqs.push(Request::Status {
            client: "fab".into(),
            ic: Some(format!("ic-{i}")),
        });
    }
    reqs
}

/// Whether a response proves the request appended a journal line — the
/// eligibility condition for storage faults (there must be a write to
/// tear).
fn journaled(resp: &Response) -> bool {
    matches!(
        resp,
        Response::Registered { .. }
            | Response::Key { .. }
            | Response::Disabled { .. }
            | Response::Error {
                code: ErrorCode::DuplicateReadout,
                ..
            }
    )
}

type CounterSums = BTreeMap<(String, Vec<(String, String)>), u64>;

/// Deterministic counters excluded from the oracle comparison: they
/// describe the *recovery machinery itself*, which the fault-free oracle
/// never exercises.
const RECOVERY_ONLY: &[&str] = &["journal_recoveries_total", "journal_compactions_total"];

fn absorb_counters(sums: &mut CounterSums, snapshot: &Snapshot) {
    for f in &snapshot.deterministic().families {
        if f.kind != MetricKind::Counter || RECOVERY_ONLY.contains(&f.name.as_str()) {
            continue;
        }
        for s in &f.series {
            if let hwm_metrics::SeriesValue::Int(v) = s.value {
                *sums.entry((f.name.clone(), s.labels.clone())).or_insert(0) += v;
            }
        }
    }
}

struct OracleRun {
    responses: Vec<Response>,
    journal: Vec<u8>,
    records: Vec<hwm_service::IcRecord>,
    counts: hwm_service::RegistryCounts,
    clones: Vec<hwm_service::CloneEvidence>,
    audit: String,
    counters: CounterSums,
    /// Ticks whose request appended a journal line.
    storage_ticks: Vec<u64>,
}

fn oracle() -> OracleRun {
    let server = Arc::new(ActivationServer::new(
        designer(),
        Registry::in_memory(),
        ServerConfig::default(),
    ));
    let mut client = LocalClient::new(Arc::clone(&server));
    let mut responses = Vec::new();
    let mut storage_ticks = Vec::new();
    for (tick, req) in schedule().iter().enumerate() {
        let resp = client.call(req).expect("oracle transport");
        if journaled(&resp) {
            storage_ticks.push(tick as u64);
        }
        responses.push(resp);
    }
    let mut counters = CounterSums::new();
    absorb_counters(&mut counters, &server.snapshot());
    OracleRun {
        responses,
        journal: server.with_registry(|r| r.journal_bytes().expect("in-memory").to_vec()),
        records: server.with_registry(|r| r.records().to_vec()),
        counts: server.with_registry(|r| r.counts()),
        clones: server.with_registry(|r| r.clones().to_vec()),
        audit: server.audit_jsonl(),
        counters,
        storage_ticks,
    }
}

fn sim_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hwm-sim-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the schedule against a file-backed server, crashing and
/// restarting at every plan tick, and checks the recovered world against
/// the oracle.
fn run_crash_sim(kind: FaultKind, crashes: usize, compact_every: u64, dir: &Path) {
    let oracle = oracle();
    let schedule = schedule();
    let eligible: Vec<u64> = if kind.is_storage() {
        oracle.storage_ticks.clone()
    } else {
        (0..schedule.len() as u64).collect()
    };
    let plan = FaultPlan::new(SEED, kind, &eligible, crashes);
    assert_eq!(plan.crash_ticks.len(), crashes, "workload has enough eligible ticks");

    let journal = dir.join("journal.jsonl");
    let audit_path = dir.join("audit.jsonl");
    let mut delivered: usize = 0;
    let mut responses: Vec<Response> = Vec::new();
    let mut counters = CounterSums::new();
    let mut crash_iter = plan.crash_ticks.iter().copied().peekable();
    let mut incarnations = 0;
    let config = ServerConfig::default();

    'world: loop {
        incarnations += 1;
        assert!(incarnations <= crashes + 1, "more restarts than crashes");
        let injector = FaultInjector::new();
        let registry = Registry::open_with(
            &journal,
            RecoverOptions {
                flush: config.flush,
                compact_every,
                injector: Some(injector.clone()),
            },
        )
        .expect("recovery");
        let audit = AuditLog::resume_file(&audit_path).expect("audit resume");
        let server = Arc::new(ActivationServer::resume(
            designer(),
            registry,
            config,
            audit,
            delivered as u64,
        ));
        let mut client = LocalClient::with_faults(Arc::clone(&server), injector.clone());
        loop {
            if delivered == schedule.len() {
                absorb_counters(&mut counters, &server.snapshot());
                // Final-incarnation state must equal the oracle's.
                server.with_registry(|r| {
                    assert_eq!(r.records(), oracle.records.as_slice(), "{kind}: records");
                    assert_eq!(r.counts(), oracle.counts, "{kind}: counts");
                    assert_eq!(r.clones(), oracle.clones.as_slice(), "{kind}: clone evidence");
                    assert_eq!(
                        r.rolling_digest(),
                        hwm_service::registry::journal_digest(&oracle.journal),
                        "{kind}: rolling digest"
                    );
                });
                assert_eq!(server.audit_jsonl(), oracle.audit, "{kind}: audit stream");
                assert_eq!(server.clock(), schedule.len() as u64, "{kind}: clock");
                break 'world;
            }
            let tick = delivered as u64;
            if crash_iter.peek() == Some(&tick) {
                crash_iter.next();
                // Counters of the dying incarnation, before the doomed
                // attempt (whose effects the oracle never sees).
                absorb_counters(&mut counters, &server.snapshot());
                match kind {
                    FaultKind::TornWrite => {
                        injector.arm(ArmedFault::TornWrite {
                            salt: plan.byte_salt(tick),
                        });
                    }
                    FaultKind::DiskFull => injector.arm(ArmedFault::DiskFull),
                    FaultKind::ShortRead => {
                        injector.arm(ArmedFault::ShortRead {
                            salt: plan.byte_salt(tick),
                        });
                    }
                    FaultKind::ConnDrop => injector.arm(ArmedFault::ConnDrop),
                    FaultKind::DelayedAccept => unreachable!("not a crash fault in this sim"),
                }
                // The doomed request: the injected fault must surface as
                // an error (transport faults) or a refused mutation
                // (storage faults); either way nothing was delivered.
                match client.call(&schedule[delivered]) {
                    Err(_) => {}
                    Ok(Response::Error { code, .. }) => {
                        assert!(
                            kind.is_storage() && code == ErrorCode::Malformed,
                            "{kind}: unexpected doomed outcome {code:?}"
                        );
                    }
                    Ok(resp) => panic!("{kind}: doomed request succeeded: {resp:?}"),
                }
                assert!(!injector.is_armed(), "{kind}: fault was consumed");
                // Kill this incarnation (drop flushes what it can).
                continue 'world;
            }
            let resp = client.call(&schedule[delivered]).expect("sim transport");
            responses.push(resp);
            delivered += 1;
        }
    }

    assert_eq!(incarnations, crashes + 1, "{kind}: one restart per crash");
    assert_eq!(responses, oracle.responses, "{kind}: delivered responses");
    assert_eq!(counters, oracle.counters, "{kind}: summed det counters");
    // Without compaction the recovered on-disk journal is byte-identical
    // to the oracle's (torn tails were truncated away; retries re-landed
    // on the same seq).
    if compact_every == 0 {
        assert_eq!(
            std::fs::read(&journal).unwrap(),
            oracle.journal,
            "{kind}: journal bytes"
        );
    }
    // A final cold open must see the same world (snapshot + tail path).
    let reopened = Registry::open(&journal).expect("cold reopen");
    assert_eq!(reopened.records(), oracle.records.as_slice());
    assert_eq!(reopened.clones(), oracle.clones.as_slice());
    assert_eq!(
        reopened.rolling_digest(),
        hwm_service::registry::journal_digest(&oracle.journal)
    );
}

#[test]
fn torn_write_crashes_recover_to_the_oracle() {
    let dir = sim_dir("torn");
    run_crash_sim(FaultKind::TornWrite, 3, 0, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_full_crashes_recover_to_the_oracle() {
    let dir = sim_dir("enospc");
    run_crash_sim(FaultKind::DiskFull, 3, 0, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn conn_drop_crashes_recover_to_the_oracle() {
    let dir = sim_dir("drop");
    run_crash_sim(FaultKind::ConnDrop, 3, 0, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn short_read_crashes_recover_to_the_oracle() {
    let dir = sim_dir("short");
    run_crash_sim(FaultKind::ShortRead, 3, 0, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_crashes_recover_with_compaction_in_the_loop() {
    // Same fault plan, but the registry auto-compacts every 4 events, so
    // restarts exercise the snapshot + tail path (and the skip of tail
    // lines the snapshot already covers).
    let dir = sim_dir("torn-compact");
    run_crash_sim(FaultKind::TornWrite, 3, 4, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_plus_tail_equals_full_journal_replay() {
    // Drive a file-backed, auto-compacting registry and an uncompacted
    // in-memory twin through the same schedule, then prove a cold open
    // (snapshot + tail) is state-equivalent to a strict replay of the
    // full journal the twin kept.
    let dir = sim_dir("equiv");
    let journal = dir.join("journal.jsonl");
    let schedule = schedule();
    let control = Arc::new(ActivationServer::new(
        designer(),
        Registry::in_memory(),
        ServerConfig::default(),
    ));
    let mut control_client = LocalClient::new(Arc::clone(&control));
    {
        let registry = Registry::open_with(
            &journal,
            RecoverOptions {
                compact_every: 3,
                ..RecoverOptions::default()
            },
        )
        .unwrap();
        let server = Arc::new(ActivationServer::new(designer(), registry, ServerConfig::default()));
        let mut client = LocalClient::new(Arc::clone(&server));
        for req in &schedule {
            client.call(req).expect("transport");
            control_client.call(req).expect("control transport");
        }
    }
    let full = control.with_registry(|r| r.journal_bytes().unwrap().to_vec());
    let replayed = Registry::replay(std::str::from_utf8(&full).unwrap()).expect("strict replay");
    let recovered = Registry::open(&journal).expect("snapshot + tail open");
    assert!(recovered.snapshot_events() > 0, "compaction produced a snapshot");
    assert_eq!(recovered.records(), replayed.records());
    assert_eq!(recovered.counts(), replayed.counts());
    assert_eq!(recovered.clones(), replayed.clones());
    assert_eq!(recovered.rolling_digest(), replayed.rolling_digest());
    let _ = std::fs::remove_dir_all(&dir);
}
