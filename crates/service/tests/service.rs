//! End-to-end tests of the activation service: the Figure-2 flow spoken
//! over the wire protocol, duplicate-readout (clone) detection, the
//! wrong-readout lockout, restart recovery, and the TCP front end.

use hwm_metering::{Designer, Foundry, LockOptions, UnlockKey};
use hwm_service::wire::readout_to_bits_string;
use hwm_service::{
    ActivationServer, Client, ErrorCode, IcState, LocalClient, Registry, Request, Response,
    ServerConfig, TcpClient, TcpServer, ThrottleConfig,
};
use std::sync::Arc;

fn designer(seed: u64) -> Designer {
    Designer::new(
        hwm_fsm::Stg::ring_counter(5, 2),
        LockOptions {
            added_modules: 2,
            // Remote disable needs a hole to drive the die into.
            black_holes: 1,
            ..LockOptions::default()
        },
        seed,
    )
    .expect("designer")
}

fn server_with(designer: &Designer, registry: Registry, throttle: ThrottleConfig) -> Arc<ActivationServer> {
    Arc::new(ActivationServer::new(
        designer.clone(),
        registry,
        ServerConfig {
            throttle,
            ..ServerConfig::default()
        },
    ))
}

fn local(designer: &Designer) -> (Arc<ActivationServer>, LocalClient) {
    let server = server_with(designer, Registry::in_memory(), ThrottleConfig::default());
    let client = LocalClient::new(Arc::clone(&server));
    (server, client)
}

/// A fabricated chip plus its wire-format readout.
fn fabricate(foundry: &mut Foundry) -> (hwm_metering::Chip, String) {
    let chip = foundry.fabricate_one();
    let readout = readout_to_bits_string(&chip.scan_flip_flops().0);
    (chip, readout)
}

#[test]
fn register_unlock_disable_lifecycle() {
    let designer = designer(11);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 12);
    let (server, mut client) = local(&designer);
    let (mut chip, readout) = fabricate(&mut foundry);

    // Foundry reports the die.
    let resp = client
        .call(&Request::Register {
            client: "fab".into(),
            ic: "ic-0".into(),
            readout: readout.clone(),
        })
        .expect("transport");
    assert_eq!(
        resp,
        Response::Registered {
            ic: "ic-0".into(),
            total: 1
        }
    );

    // Test facility asks for the key; the key must actually unlock the die.
    let resp = client
        .call(&Request::Unlock {
            client: "fab".into(),
            readout: readout.clone(),
        })
        .expect("transport");
    let key = match resp {
        Response::Key { ref ic, ref key } => {
            assert_eq!(ic, "ic-0");
            UnlockKey { values: key.clone() }
        }
        other => panic!("expected a key, got {other:?}"),
    };
    chip.apply_key(&key).expect("key accepted by the die");
    assert!(chip.is_unlocked(), "issued key must unlock the silicon");
    assert_eq!(server.activations(), 1, "one royalty counted");

    // A second unlock for the same die is refused (keys are issued once).
    let resp = client
        .call(&Request::Unlock {
            client: "fab".into(),
            readout: readout.clone(),
        })
        .expect("transport");
    assert!(matches!(
        resp,
        Response::Error {
            code: ErrorCode::AlreadyUnlocked,
            ..
        }
    ));

    // Remote disable returns the kill sequence, and the sequence works.
    let resp = client
        .call(&Request::RemoteDisable {
            client: "alice".into(),
            ic: "ic-0".into(),
        })
        .expect("transport");
    let kill = match resp {
        Response::Disabled { ref ic, ref kill } => {
            assert_eq!(ic, "ic-0");
            kill.clone()
        }
        other => panic!("expected disable, got {other:?}"),
    };
    assert!(chip.remote_disable(&kill), "kill sequence must trap the die");

    // Status reflects the whole history.
    let resp = client
        .call(&Request::Status {
            client: "alice".into(),
            ic: Some("ic-0".into()),
        })
        .expect("transport");
    match resp {
        Response::Status(s) => {
            // States are exclusive: a disabled die no longer counts as
            // unlocked.
            assert_eq!((s.registered, s.unlocked, s.disabled), (1, 0, 1));
            assert_eq!(s.ic_state.as_deref(), Some("disabled"));
        }
        other => panic!("expected status, got {other:?}"),
    }
    server.with_registry(|r| {
        assert_eq!(r.by_ic("ic-0").unwrap().state, IcState::Disabled);
    });
}

#[test]
fn duplicate_readout_is_rejected_as_clone_evidence() {
    let designer = designer(21);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 22);
    let (_server, mut client) = local(&designer);
    let (_chip, readout) = fabricate(&mut foundry);

    let ok = client
        .call(&Request::Register {
            client: "fab".into(),
            ic: "ic-0".into(),
            readout: readout.clone(),
        })
        .unwrap();
    assert!(!ok.is_error());
    // The same readout under a different label: a cloned die.
    let resp = client
        .call(&Request::Register {
            client: "fab".into(),
            ic: "ic-clone".into(),
            readout,
        })
        .unwrap();
    match resp {
        Response::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::DuplicateReadout);
            assert!(message.contains("ic-0"), "names the original die: {message}");
        }
        other => panic!("expected duplicate error, got {other:?}"),
    }
    let resp = client
        .call(&Request::Status {
            client: "fab".into(),
            ic: None,
        })
        .unwrap();
    match resp {
        Response::Status(s) => assert_eq!((s.registered, s.duplicates), (1, 1)),
        other => panic!("expected status, got {other:?}"),
    }
}

#[test]
fn wrong_readouts_trigger_exponential_lockout() {
    let designer = designer(31);
    let throttle = ThrottleConfig {
        burst: 1_000,
        refill_ticks: 1,
        failure_threshold: 3,
        base_lockout_ticks: 50,
        max_lockout_ticks: 1 << 20,
    };
    let server = server_with(&designer, Registry::in_memory(), throttle);
    let mut client = LocalClient::new(Arc::clone(&server));

    // A guessed readout of the right length that no registered die owns.
    let width = designer.blueprint().scan_layout().total();
    let guess: String = "0".repeat(width);
    let mut attempts = 0u64;
    let locked_at = loop {
        attempts += 1;
        let resp = client
            .call(&Request::Unlock {
                client: "mallory".into(),
                readout: guess.clone(),
            })
            .unwrap();
        match resp {
            Response::Error {
                code: ErrorCode::UnknownReadout,
                retry_at,
                ..
            } => {
                if let Some(until) = retry_at {
                    break until;
                }
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    };
    assert_eq!(
        attempts, 3,
        "the Nth wrong readout (threshold) must trigger the lockout"
    );
    assert_eq!(locked_at, attempts + 50, "base lockout duration");
    // While locked out, even well-formed requests bounce.
    let resp = client
        .call(&Request::Status {
            client: "mallory".into(),
            ic: None,
        })
        .unwrap();
    assert!(matches!(
        resp,
        Response::Error {
            code: ErrorCode::LockedOut,
            ..
        }
    ));
    // Another client is unaffected.
    let resp = client
        .call(&Request::Status {
            client: "fab".into(),
            ic: None,
        })
        .unwrap();
    match resp {
        Response::Status(s) => assert_eq!(s.lockouts, 1),
        other => panic!("expected status, got {other:?}"),
    }
}

#[test]
fn token_bucket_throttles_bursts() {
    let designer = designer(41);
    let throttle = ThrottleConfig {
        burst: 2,
        refill_ticks: 10,
        ..ThrottleConfig::default()
    };
    let server = server_with(&designer, Registry::in_memory(), throttle);
    let mut client = LocalClient::new(Arc::clone(&server));
    let status = |client: &mut LocalClient| {
        client
            .call(&Request::Status {
                client: "fab".into(),
                ic: None,
            })
            .unwrap()
    };
    assert!(!status(&mut client).is_error());
    assert!(!status(&mut client).is_error());
    let resp = status(&mut client);
    assert!(
        matches!(
            resp,
            Response::Error {
                code: ErrorCode::Throttled,
                retry_at: Some(_),
                ..
            }
        ),
        "third back-to-back request exceeds the burst: {resp:?}"
    );
}

#[test]
fn journal_replay_recovers_state_across_restart() {
    let dir = std::env::temp_dir().join(format!("hwm-service-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("registry.jsonl");
    let _ = std::fs::remove_file(&path);

    let designer = designer(51);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 52);
    let (_chip, readout) = fabricate(&mut foundry);

    // First server life: register + unlock.
    {
        let server = server_with(
            &designer,
            Registry::open(&path).unwrap(),
            ThrottleConfig::default(),
        );
        let mut client = LocalClient::new(Arc::clone(&server));
        assert!(!client
            .call(&Request::Register {
                client: "fab".into(),
                ic: "ic-0".into(),
                readout: readout.clone(),
            })
            .unwrap()
            .is_error());
        assert!(matches!(
            client
                .call(&Request::Unlock {
                    client: "fab".into(),
                    readout: readout.clone(),
                })
                .unwrap(),
            Response::Key { .. }
        ));
    }

    // Second life: the journal replays; the die is still unlocked, its
    // readout still collides, and its key is not reissued.
    let server = server_with(
        &designer,
        Registry::open(&path).unwrap(),
        ThrottleConfig::default(),
    );
    let mut client = LocalClient::new(Arc::clone(&server));
    let resp = client
        .call(&Request::Status {
            client: "fab".into(),
            ic: Some("ic-0".into()),
        })
        .unwrap();
    match resp {
        Response::Status(s) => {
            assert_eq!((s.registered, s.unlocked), (1, 1));
            assert_eq!(s.ic_state.as_deref(), Some("unlocked"));
        }
        other => panic!("expected status, got {other:?}"),
    }
    let resp = client
        .call(&Request::Unlock {
            client: "fab".into(),
            readout: readout.clone(),
        })
        .unwrap();
    assert!(matches!(
        resp,
        Response::Error {
            code: ErrorCode::AlreadyUnlocked,
            ..
        }
    ));
    let resp = client
        .call(&Request::Register {
            client: "fab".into(),
            ic: "ic-again".into(),
            readout,
        })
        .unwrap();
    assert!(matches!(
        resp,
        Response::Error {
            code: ErrorCode::DuplicateReadout,
            ..
        }
    ));

    drop(client);
    drop(server);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn tcp_round_trip_matches_local_semantics() {
    let designer = designer(61);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 62);
    let server = server_with(&designer, Registry::in_memory(), ThrottleConfig::default());
    let tcp = match TcpServer::spawn("127.0.0.1:0", Arc::clone(&server)) {
        Ok(tcp) => tcp,
        Err(e) => {
            // Sandboxes may refuse loopback binds; the protocol itself is
            // covered by the LocalClient tests above.
            eprintln!("skipping TCP test: bind failed: {e}");
            return;
        }
    };
    let addr = tcp.addr();

    // Two concurrent connections register their own dies and unlock them.
    // The tiny test lock has few flip-flops, so skip power-up collisions.
    let mut chips: Vec<String> = Vec::new();
    while chips.len() < 4 {
        let (_chip, readout) = fabricate(&mut foundry);
        if !chips.contains(&readout) {
            chips.push(readout);
        }
    }
    let mut handles = Vec::new();
    for (w, chunk) in chips.chunks(2).enumerate() {
        let chunk = chunk.to_vec();
        handles.push(std::thread::spawn(move || {
            let mut client = TcpClient::connect(addr).expect("connect");
            for (i, readout) in chunk.iter().enumerate() {
                let ic = format!("ic-{w}-{i}");
                let resp = client
                    .call(&Request::Register {
                        client: format!("fab-{w}"),
                        ic: ic.clone(),
                        readout: readout.clone(),
                    })
                    .expect("register over tcp");
                assert!(!resp.is_error(), "{resp:?}");
                let resp = client
                    .call(&Request::Unlock {
                        client: format!("fab-{w}"),
                        readout: readout.clone(),
                    })
                    .expect("unlock over tcp");
                assert!(matches!(resp, Response::Key { .. }), "{resp:?}");
            }
        }));
    }
    for h in handles {
        h.join().expect("tcp worker");
    }
    tcp.shutdown();
    let status = server.status();
    assert_eq!((status.registered, status.unlocked), (4, 4));
}
