//! Property-based tests for the FSM substrate.

use hwm_fsm::{kiss, paths, EncodingStrategy, StateId, Stg};
use hwm_logic::Bits;
use proptest::prelude::*;

fn arb_stg() -> impl Strategy<Value = Stg> {
    (2usize..20, 1usize..4, 1usize..4, 0usize..4, any::<u64>())
        .prop_map(|(states, inputs, outputs, extra, seed)| {
            hwm_fsm::random_stg(states, inputs, outputs, extra, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_stgs_are_well_formed(stg in arb_stg()) {
        prop_assert!(stg.is_complete());
        prop_assert!(stg.is_deterministic());
        prop_assert_eq!(
            stg.reachable_from(stg.reset_state()).len(),
            stg.state_count()
        );
    }

    #[test]
    fn kiss_roundtrip_preserves_behaviour(stg in arb_stg(), seed in any::<u64>()) {
        let text = kiss::emit(&stg);
        let back = kiss::parse(&text).unwrap();
        prop_assert_eq!(back.state_count(), stg.state_count());
        // Drive both machines with the same pseudo-random input train.
        let mut x = seed;
        let mut s1 = stg.reset_state();
        let mut s2 = back.reset_state();
        for _ in 0..100 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (x >> 30) & ((1 << stg.num_inputs()) - 1);
            let input = Bits::from_u64(v, stg.num_inputs());
            let (n1, o1) = stg.step_or_hold(s1, &input);
            let (n2, o2) = back.step_or_hold(s2, &input);
            prop_assert_eq!(o1, o2);
            prop_assert_eq!(n1.index(), n2.index());
            s1 = n1;
            s2 = n2;
        }
    }

    #[test]
    fn shortest_sequences_replay(stg in arb_stg(), from_raw in any::<u32>(), to_raw in any::<u32>()) {
        let from = StateId::from_index(from_raw as usize % stg.state_count());
        let to = StateId::from_index(to_raw as usize % stg.state_count());
        if let Ok(Some(seq)) = paths::shortest_input_sequence(&stg, from, to) {
            let (visited, _) = stg.run(from, &seq);
            let arrived = visited.last().copied().unwrap_or(from);
            prop_assert_eq!(arrived, to);
            // And it is genuinely shortest per the distance map.
            let dist = paths::distances_to(&stg, to).unwrap();
            prop_assert_eq!(seq.len(), dist[from.index()]);
        }
    }

    #[test]
    fn encodings_are_injective(stg in arb_stg(), seed in any::<u64>(), extra in 0usize..6) {
        for strategy in [
            EncodingStrategy::Binary,
            EncodingStrategy::Gray,
            EncodingStrategy::RandomObfuscated { seed },
        ] {
            let enc = hwm_fsm::Encoding::assign(&stg, strategy, extra).unwrap();
            let mut seen = std::collections::HashSet::new();
            for i in 0..stg.state_count() {
                let code = enc.code(StateId::from_index(i));
                prop_assert!(code < (1u64 << enc.bits()) || enc.bits() == 64);
                prop_assert!(seen.insert(code), "duplicate code {}", code);
                prop_assert_eq!(enc.state_of(code), Some(StateId::from_index(i)));
            }
        }
    }

    #[test]
    fn absorb_preserves_both_machines(a in arb_stg(), b_seed in any::<u64>()) {
        let b = hwm_fsm::random_stg(5, a.num_inputs(), a.num_outputs(), 2, b_seed);
        let mut merged = a.clone();
        let map = merged.absorb(&b, "x_").unwrap();
        // The original part still behaves like `a`.
        let eq = hwm_fsm::product::io_equivalent(
            &a, a.reset_state(), &merged, merged.reset_state(), 100_000,
        ).unwrap();
        prop_assert!(eq.is_equivalent());
        // The absorbed part still behaves like `b`.
        let eq = hwm_fsm::product::io_equivalent(
            &b, b.reset_state(), &merged, map[b.reset_state().index()], 100_000,
        ).unwrap();
        prop_assert!(eq.is_equivalent());
    }
}
