//! The KISS2 state-machine interchange format used by SIS.
//!
//! ```text
//! .i 1
//! .o 1
//! .s 2
//! .p 3
//! .r idle
//! 1 idle busy 0
//! 0 idle idle 0
//! - busy idle 1
//! .e
//! ```

use crate::{FsmError, Stg};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes an STG to KISS2.
pub fn emit(stg: &Stg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".i {}", stg.num_inputs());
    let _ = writeln!(out, ".o {}", stg.num_outputs());
    let _ = writeln!(out, ".s {}", stg.state_count());
    let _ = writeln!(out, ".p {}", stg.transitions().len());
    let _ = writeln!(out, ".r {}", sanitize(stg.state_name(stg.reset_state())));
    for t in stg.transitions() {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            t.input,
            sanitize(stg.state_name(t.from)),
            sanitize(stg.state_name(t.to)),
            t.output
        );
    }
    let _ = writeln!(out, ".e");
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

/// Parses KISS2 text into an [`Stg`].
///
/// # Errors
///
/// Returns [`FsmError::ParseKiss`] describing the first malformed line.
pub fn parse(text: &str) -> Result<Stg, FsmError> {
    let err = |line: usize, message: &str| FsmError::ParseKiss {
        line,
        message: message.to_string(),
    };
    let mut num_inputs = None;
    let mut num_outputs = None;
    let mut reset_name: Option<String> = None;
    let mut body: Vec<(usize, [String; 4])> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut toks = rest.split_whitespace();
            let key = toks.next().unwrap_or("");
            match key {
                "i" => {
                    num_inputs = Some(
                        toks.next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err(lineno, "bad .i"))?,
                    )
                }
                "o" => {
                    num_outputs = Some(
                        toks.next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| err(lineno, "bad .o"))?,
                    )
                }
                "s" | "p" => {} // informational
                "r" => reset_name = toks.next().map(str::to_string),
                "e" => break,
                _ => return Err(err(lineno, &format!("unknown directive .{key}"))),
            }
        } else {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() != 4 {
                return Err(err(lineno, "transition needs 4 fields"));
            }
            body.push((
                lineno,
                [
                    toks[0].to_string(),
                    toks[1].to_string(),
                    toks[2].to_string(),
                    toks[3].to_string(),
                ],
            ));
        }
    }
    let num_inputs = num_inputs.ok_or_else(|| err(0, "missing .i"))?;
    let num_outputs = num_outputs.ok_or_else(|| err(0, "missing .o"))?;
    let mut stg = Stg::new(num_inputs, num_outputs);
    let mut by_name: HashMap<String, crate::StateId> = HashMap::new();
    // Declare states in order of first appearance (from field first, as SIS
    // does).
    for (_, t) in &body {
        for name in [&t[1], &t[2]] {
            if !by_name.contains_key(name) {
                let id = stg.add_state(name.clone());
                by_name.insert(name.clone(), id);
            }
        }
    }
    for (lineno, t) in &body {
        let from = by_name[&t[1]];
        let to = by_name[&t[2]];
        stg.add_transition_str(from, &t[0], to, &t[3])
            .map_err(|e| err(*lineno, &format!("{e}")))?;
    }
    match reset_name {
        Some(name) => {
            let id = by_name
                .get(&name)
                .ok_or_else(|| err(0, &format!("reset state {name:?} never used")))?;
            stg.set_reset(*id);
        }
        None => {
            if stg.state_count() == 0 {
                return Err(err(0, "machine has no states"));
            }
        }
    }
    Ok(stg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwm_logic::Bits;

    #[test]
    fn roundtrip_ring_counter() {
        let stg = Stg::ring_counter(5, 2);
        let text = emit(&stg);
        let back = parse(&text).unwrap();
        assert_eq!(back.state_count(), 5);
        assert_eq!(back.num_inputs(), 1);
        assert_eq!(back.num_outputs(), 2);
        assert_eq!(back.state_name(back.reset_state()), "q0");
        // Same behaviour on a pulse train.
        let inputs = vec![Bits::from_u64(1, 1); 7];
        let (s1, o1) = stg.run(stg.reset_state(), &inputs);
        let (s2, o2) = back.run(back.reset_state(), &inputs);
        assert_eq!(
            s1.iter().map(|s| s.index()).collect::<Vec<_>>(),
            s2.iter().map(|s| s.index()).collect::<Vec<_>>()
        );
        assert_eq!(o1, o2);
    }

    #[test]
    fn parse_example() {
        let text = "\
.i 1
.o 1
.s 2
.p 3
.r idle
1 idle busy 0
0 idle idle 0
- busy idle 1
.e
";
        let stg = parse(text).unwrap();
        assert_eq!(stg.state_count(), 2);
        assert!(stg.is_complete());
        assert_eq!(stg.state_name(stg.reset_state()), "idle");
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(parse(".o 1\n"), Err(FsmError::ParseKiss { .. })));
        assert!(parse(".i 1\n.o 1\n1 a b\n.e\n").is_err());
        assert!(parse(".i x\n").is_err());
        assert!(parse(".i 1\n.o 1\n.r ghost\n1 a a 1\n.e\n").is_err());
    }
}
