//! State encoding.
//!
//! The synthesis flow assigns a binary code to each state. For the metering
//! scheme the *obfuscated* strategy matters: the paper observes (§5.1/§6.2)
//! that codes must be assigned out of sequence so that the Hamming distance
//! between two codes carries no information about the proximity of the
//! states in the STG — defeating scan-based structure recovery.

use crate::{FsmError, StateId, Stg};
use hwm_logic::Bits;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How codes are assigned to states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncodingStrategy {
    /// Code = state index.
    Binary,
    /// Gray code of the state index (adjacent indices differ in one bit).
    Gray,
    /// One bit per state.
    OneHot,
    /// Seeded random permutation of the code space — the paper's
    /// out-of-sequence obfuscation.
    RandomObfuscated {
        /// RNG seed for the permutation.
        seed: u64,
    },
}

/// An assignment of distinct binary codes to the states of an STG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Encoding {
    bits: usize,
    codes: Vec<u64>,
    by_code: HashMap<u64, StateId>,
}

impl Encoding {
    /// Assigns codes to every state of `stg` using `strategy`, with at least
    /// `min_bits` code bits (more when the state count requires it; one-hot
    /// ignores `min_bits`).
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::WidthMismatch`] when the state count does not fit
    /// in 64 bits of code.
    pub fn assign(stg: &Stg, strategy: EncodingStrategy, min_bits: usize) -> Result<Self, FsmError> {
        let _span = hwm_trace::span("fsm.encode");
        let n = stg.state_count();
        let needed = bits_for(n);
        if needed > 64 {
            return Err(FsmError::WidthMismatch {
                expected: 64,
                got: needed,
            });
        }
        let (bits, codes) = match strategy {
            EncodingStrategy::Binary => {
                let bits = needed.max(min_bits).max(1);
                (bits, (0..n as u64).collect::<Vec<_>>())
            }
            EncodingStrategy::Gray => {
                let bits = needed.max(min_bits).max(1);
                (bits, (0..n as u64).map(|i| i ^ (i >> 1)).collect())
            }
            EncodingStrategy::OneHot => {
                if n > 64 {
                    return Err(FsmError::WidthMismatch {
                        expected: 64,
                        got: n,
                    });
                }
                (n.max(1), (0..n).map(|i| 1u64 << i).collect())
            }
            EncodingStrategy::RandomObfuscated { seed } => {
                let bits = needed.max(min_bits).max(1);
                let mut rng = StdRng::seed_from_u64(seed);
                let codes = if bits <= 16 {
                    // Sample without replacement from the full code space.
                    let mut space: Vec<u64> = (0..(1u64 << bits)).collect();
                    space.shuffle(&mut rng);
                    space.truncate(n);
                    space
                } else {
                    // Sparse rejection sampling for big spaces.
                    let mut seen = std::collections::HashSet::new();
                    let mut codes = Vec::with_capacity(n);
                    while codes.len() < n {
                        let c = rng.random::<u64>() & mask(bits);
                        if seen.insert(c) {
                            codes.push(c);
                        }
                    }
                    codes
                };
                (bits, codes)
            }
        };
        let by_code = codes
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, StateId::from_index(i)))
            .collect();
        Ok(Encoding { bits, codes, by_code })
    }

    /// Number of code bits (flip-flops).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Code of a state as an integer.
    pub fn code(&self, s: StateId) -> u64 {
        self.codes[s.index()]
    }

    /// Code of a state as bits (bit 0 = flip-flop 0).
    pub fn code_bits(&self, s: StateId) -> Bits {
        Bits::from_u64(self.codes[s.index()], self.bits)
    }

    /// The state owning a code, if any (codes outside the image are the
    /// don't-care states).
    pub fn state_of(&self, code: u64) -> Option<StateId> {
        self.by_code.get(&code).copied()
    }

    /// All codes, indexed by state.
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }

    /// Pearson correlation between STG hop distance and code Hamming
    /// distance over all state pairs reachable from each other. Near zero
    /// for the obfuscated strategy (the paper's observation in §5.2); high
    /// for Gray-coded rings.
    pub fn proximity_correlation(&self, stg: &Stg) -> f64 {
        // Undirected hop distances by BFS per state over the unlabeled
        // graph (undirected because scan-based attackers observe adjacency,
        // not direction).
        let n = stg.state_count();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for t in stg.transitions() {
            if t.from != t.to {
                adj[t.from.index()].push(t.to.index());
                adj[t.to.index()].push(t.from.index());
            }
        }
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for start in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            for (other, &d) in dist.iter().enumerate() {
                if other != start && d != usize::MAX {
                    xs.push(d as f64);
                    ys.push(
                        (self.codes[start] ^ self.codes[other]).count_ones() as f64,
                    );
                }
            }
        }
        pearson(&xs, &ys)
    }
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Number of bits needed to give `n` items distinct codes.
pub fn bits_for(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

fn mask(bits: usize) -> u64 {
    if bits >= 64 {
        !0
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_counts() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(1 << 12), 12);
    }

    #[test]
    fn binary_codes_sequential() {
        let stg = Stg::ring_counter(5, 1);
        let e = Encoding::assign(&stg, EncodingStrategy::Binary, 0).unwrap();
        assert_eq!(e.bits(), 3);
        assert_eq!(e.code(StateId::from_index(4)), 4);
        assert_eq!(e.state_of(2), Some(StateId::from_index(2)));
        assert_eq!(e.state_of(7), None);
    }

    #[test]
    fn gray_codes_adjacent() {
        let stg = Stg::ring_counter(8, 1);
        let e = Encoding::assign(&stg, EncodingStrategy::Gray, 0).unwrap();
        for i in 0..7 {
            let a = e.code(StateId::from_index(i));
            let b = e.code(StateId::from_index(i + 1));
            assert_eq!((a ^ b).count_ones(), 1);
        }
    }

    #[test]
    fn one_hot() {
        let stg = Stg::ring_counter(5, 1);
        let e = Encoding::assign(&stg, EncodingStrategy::OneHot, 0).unwrap();
        assert_eq!(e.bits(), 5);
        for i in 0..5 {
            assert_eq!(e.code(StateId::from_index(i)).count_ones(), 1);
        }
    }

    #[test]
    fn obfuscated_codes_distinct_and_deterministic() {
        let stg = Stg::ring_counter(16, 1);
        let a = Encoding::assign(&stg, EncodingStrategy::RandomObfuscated { seed: 9 }, 6).unwrap();
        let b = Encoding::assign(&stg, EncodingStrategy::RandomObfuscated { seed: 9 }, 6).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.bits(), 6);
        let mut codes = a.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 16);
    }

    #[test]
    fn min_bits_respected() {
        let stg = Stg::ring_counter(4, 1);
        let e = Encoding::assign(&stg, EncodingStrategy::Binary, 12).unwrap();
        assert_eq!(e.bits(), 12);
    }

    #[test]
    fn obfuscation_decorrelates() {
        let stg = Stg::ring_counter(32, 1);
        let gray = Encoding::assign(&stg, EncodingStrategy::Gray, 0).unwrap();
        let obf =
            Encoding::assign(&stg, EncodingStrategy::RandomObfuscated { seed: 3 }, 0).unwrap();
        let cg = gray.proximity_correlation(&stg).abs();
        let co = obf.proximity_correlation(&stg).abs();
        assert!(
            co < cg,
            "obfuscated correlation {co} should be below gray {cg}"
        );
        assert!(co < 0.35, "obfuscated correlation should be near zero, got {co}");
    }

    #[test]
    fn wide_obfuscated_space() {
        let stg = Stg::ring_counter(10, 1);
        let e = Encoding::assign(&stg, EncodingStrategy::RandomObfuscated { seed: 1 }, 30).unwrap();
        assert_eq!(e.bits(), 30);
        let mut codes = e.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 10);
    }
}
