//! Cycle analysis of STGs.
//!
//! The paper (§7.3) argues key diversity from the number of cycles in the
//! added STG: each cycle multiplies the set of distinct unlocking sequences,
//! and the authors count "more than 40 cycles" in their 12-FF added STG
//! using an approximate DAG-contraction method. This module provides that
//! approximate count and an exact bounded enumeration for cross-checking on
//! small graphs.

use crate::{StateId, Stg};
use std::collections::HashSet;

/// Builds the plain state adjacency (ignoring edge labels, deduplicated,
/// self-loops dropped — a self-loop is a trivial cycle counted separately).
fn adjacency(stg: &Stg) -> Vec<Vec<usize>> {
    let n = stg.state_count();
    let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for t in stg.transitions() {
        if t.from != t.to {
            adj[t.from.index()].insert(t.to.index());
        }
    }
    adj.into_iter()
        .map(|s| {
            // Sorted, not hash order: the contraction count depends on DFS
            // visit order, and a per-process HashSet order would make it
            // (and results/analysis.txt) differ from run to run.
            let mut v: Vec<usize> = s.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Number of self-loop states.
pub fn self_loop_count(stg: &Stg) -> usize {
    let mut states: HashSet<usize> = HashSet::new();
    for t in stg.transitions() {
        if t.from == t.to {
            states.insert(t.from.index());
        }
    }
    states.len()
}

/// The paper's approximate cycle count: repeatedly find a cycle by DFS,
/// contract it to a single node, and repeat until the graph is acyclic.
/// Each contraction counts one cycle. This lower-bounds the true number of
/// simple cycles (it equals the graph's cycle-space dimension contribution
/// found by this strategy) and is cheap on large graphs.
pub fn count_cycles_contraction(stg: &Stg) -> usize {
    let mut adj = adjacency(stg);
    let mut count = self_loop_count(stg);
    // Union-find over contracted nodes.
    let n = adj.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    loop {
        // DFS to find one cycle among representatives.
        let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
        let mut found: Option<Vec<usize>> = None;
        'roots: for root in 0..n {
            if find(&mut parent, root) != root || color[root] != 0 {
                continue;
            }
            // Iterative DFS with an index-based stack of (node, edge cursor).
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = 1;
            while let Some(top) = stack.len().checked_sub(1) {
                let (u, ei) = stack[top];
                if ei >= adj[u].len() {
                    color[u] = 2;
                    stack.pop();
                    continue;
                }
                stack[top].1 += 1;
                let v = find(&mut parent, adj[u][ei]);
                if v == u {
                    continue; // contracted self-edge
                }
                if color[v] == 1 {
                    // Found a cycle: the gray path suffix from v to u.
                    let pos = stack
                        .iter()
                        .position(|&(x, _)| x == v)
                        .expect("gray node must be on the stack");
                    found = Some(stack[pos..].iter().map(|&(x, _)| x).collect());
                    break 'roots;
                }
                if color[v] == 0 {
                    color[v] = 1;
                    stack.push((v, 0));
                }
            }
        }
        match found {
            None => break,
            Some(cycle) => {
                count += 1;
                // Contract the cycle into its first node.
                let target = cycle[0];
                for &c in &cycle {
                    parent[c] = target;
                }
                parent[target] = target;
                let mut merged_edges: HashSet<usize> = HashSet::new();
                for &c in &cycle {
                    let edges = adj[c].clone();
                    for raw in edges {
                        let v = find(&mut parent, raw);
                        if v != target {
                            merged_edges.insert(v);
                        }
                    }
                }
                // Sorted for the same reason as `adjacency`: keep later
                // DFS passes (and the reported count) run-independent.
                let mut merged: Vec<usize> = merged_edges.into_iter().collect();
                merged.sort_unstable();
                adj[target] = merged;
                // Edges of other nodes into the contracted cycle are
                // redirected lazily through `find` at traversal time.
            }
        }
    }
    count
}

/// Exact count of simple cycles up to `limit` (then stops and returns
/// `limit`). DFS-based enumeration: only feasible on small graphs — used to
/// validate [`count_cycles_contraction`] in tests and to report the §7.3
/// key-diversity number on the added STG modules.
pub fn count_simple_cycles_bounded(stg: &Stg, limit: usize) -> usize {
    let adj = adjacency(stg);
    let n = adj.len();
    let mut count = self_loop_count(stg);
    if count >= limit {
        return limit;
    }
    // Enumerate cycles whose minimum node is `start` (Johnson-flavoured
    // restriction avoids duplicates).
    let mut path: Vec<usize> = Vec::new();
    let mut on_path = vec![false; n];
    fn dfs(
        u: usize,
        start: usize,
        adj: &[Vec<usize>],
        path: &mut Vec<usize>,
        on_path: &mut [bool],
        count: &mut usize,
        limit: usize,
    ) {
        if *count >= limit {
            return;
        }
        path.push(u);
        on_path[u] = true;
        for &v in &adj[u] {
            if v == start {
                *count += 1;
                if *count >= limit {
                    break;
                }
            } else if v > start && !on_path[v] {
                dfs(v, start, adj, path, on_path, count, limit);
            }
        }
        path.pop();
        on_path[u] = false;
    }
    for start in 0..n {
        dfs(start, start, &adj, &mut path, &mut on_path, &mut count, limit);
        if count >= limit {
            return limit;
        }
    }
    count
}

/// Whether every state in `states` has a path to `target` in the STG.
pub fn all_reach(stg: &Stg, states: &[StateId], target: StateId) -> bool {
    // Reverse reachability from target.
    let n = stg.state_count();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for t in stg.transitions() {
        rev[t.to.index()].push(t.from.index());
    }
    let mut seen = vec![false; n];
    let mut stack = vec![target.index()];
    seen[target.index()] = true;
    while let Some(u) = stack.pop() {
        for &p in &rev[u] {
            if !seen[p] {
                seen[p] = true;
                stack.push(p);
            }
        }
    }
    states.iter().all(|s| seen[s.index()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_has_one_cycle_plus_self_loops() {
        let stg = Stg::ring_counter(6, 1);
        // 6 hold self-loops + the big ring.
        assert_eq!(self_loop_count(&stg), 6);
        assert_eq!(count_cycles_contraction(&stg), 7);
        assert_eq!(count_simple_cycles_bounded(&stg, 100), 7);
    }

    #[test]
    fn two_nested_cycles() {
        let mut stg = Stg::new(1, 1);
        for i in 0..4 {
            stg.add_state(format!("s{i}"));
        }
        let s = |i: usize| StateId::from_index(i);
        // 0→1→2→3→0 and shortcut 1→0.
        stg.add_transition_str(s(0), "-", s(1), "0").unwrap();
        stg.add_transition_str(s(1), "1", s(2), "0").unwrap();
        stg.add_transition_str(s(2), "-", s(3), "0").unwrap();
        stg.add_transition_str(s(3), "-", s(0), "0").unwrap();
        stg.add_transition_str(s(1), "0", s(0), "0").unwrap();
        assert_eq!(count_simple_cycles_bounded(&stg, 100), 2);
        // Contraction finds at least one, at most the exact count.
        let approx = count_cycles_contraction(&stg);
        assert!((1..=2).contains(&approx));
    }

    #[test]
    fn dag_has_no_cycles() {
        let mut stg = Stg::new(1, 1);
        for i in 0..5 {
            stg.add_state(format!("s{i}"));
        }
        for i in 0..4usize {
            stg.add_transition_str(
                StateId::from_index(i),
                "-",
                StateId::from_index(i + 1),
                "0",
            )
            .unwrap();
        }
        assert_eq!(count_cycles_contraction(&stg), 0);
        assert_eq!(count_simple_cycles_bounded(&stg, 10), 0);
    }

    #[test]
    fn bounded_stops_at_limit() {
        // Complete digraph on 6 nodes has lots of cycles.
        let mut stg = Stg::new(3, 1);
        for i in 0..6 {
            stg.add_state(format!("s{i}"));
        }
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    stg.add_transition_str(
                        StateId::from_index(i),
                        "---",
                        StateId::from_index(j),
                        "0",
                    )
                    .unwrap();
                }
            }
        }
        assert_eq!(count_simple_cycles_bounded(&stg, 40), 40);
    }

    #[test]
    fn reachability_to_target() {
        let stg = Stg::ring_counter(5, 1);
        let all: Vec<StateId> = (0..5).map(StateId::from_index).collect();
        assert!(all_reach(&stg, &all, StateId::from_index(0)));
        let mut dag = Stg::new(1, 1);
        let a = dag.add_state("a");
        let b = dag.add_state("b");
        dag.add_transition_str(a, "-", b, "0").unwrap();
        assert!(!all_reach(&dag, &[a, b], a));
    }
}
