//! Finite-state-machine / state-transition-graph substrate.
//!
//! The paper manipulates designs at the STG level: the original control FSM
//! is *boosted* with added states, the designer computes unlocking input
//! sequences by path search on the transition table, and key diversity is
//! argued through the cycle structure of the added graph. This crate
//! provides that machinery:
//!
//! * [`Stg`] — states, cube-labelled transitions, determinism/completeness
//!   checks, cycle-accurate simulation;
//! * [`kiss`] — the KISS2 interchange format used by SIS;
//! * [`paths`] — breadth-first shortest input sequences and diversified
//!   multi-key search;
//! * [`cycles`] — cycle counting (the paper's §7.3 key-diversity argument);
//! * [`encode`] — state-encoding strategies including the out-of-sequence
//!   obfuscated encoding of §5.2;
//! * [`product`] — input/output equivalence of two machines (used to prove
//!   that boosting preserves the original behaviour after unlock).
//!
//! # Example
//!
//! ```
//! use hwm_fsm::Stg;
//! use hwm_logic::Bits;
//!
//! let stg = Stg::ring_counter(5, 3);
//! assert!(stg.is_deterministic());
//! assert!(stg.is_complete());
//! // Driving the input high advances the ring.
//! let (next, out) = stg.step(stg.reset_state(), &Bits::from_u64(1, 1)).unwrap();
//! assert_eq!(next.index(), 1);
//! assert_eq!(out.low_u64(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod cycles;
pub mod encode;
pub mod kiss;
pub mod minimize;
pub mod paths;
pub mod product;
mod random;
mod stg;

pub use encode::{Encoding, EncodingStrategy};
pub use random::{indexed_seed, random_stg, random_stg_indexed};
pub use stg::{StateId, Stg, Transition};

use std::error::Error;
use std::fmt;

/// Errors produced by FSM-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsmError {
    /// A state id referenced a state that does not exist.
    UnknownState {
        /// The offending index.
        index: usize,
    },
    /// A transition used the wrong input or output width.
    WidthMismatch {
        /// Expected width.
        expected: usize,
        /// Width supplied.
        got: usize,
    },
    /// Text being parsed was not valid KISS2.
    ParseKiss {
        /// Line number (1-based).
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A search exceeded its state or length budget.
    BudgetExceeded {
        /// The budget that was exhausted.
        budget: usize,
    },
    /// The machine is not deterministic where determinism is required.
    Nondeterministic {
        /// State at which two transitions overlap.
        state: usize,
    },
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::UnknownState { index } => write!(f, "unknown state index {index}"),
            FsmError::WidthMismatch { expected, got } => {
                write!(f, "width mismatch: expected {expected}, got {got}")
            }
            FsmError::ParseKiss { line, message } => {
                write!(f, "KISS2 parse error at line {line}: {message}")
            }
            FsmError::BudgetExceeded { budget } => {
                write!(f, "search exceeded budget of {budget}")
            }
            FsmError::Nondeterministic { state } => {
                write!(f, "machine is nondeterministic at state {state}")
            }
        }
    }
}

impl Error for FsmError {}
