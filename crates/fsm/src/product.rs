//! Input/output equivalence of two machines.
//!
//! Boosting an FSM must preserve the original behavioural specification
//! (§4.1): once the BFSM has been driven to the functional reset state, its
//! observable input/output behaviour must be identical to the original
//! design's. This module checks that by breadth-first exploration of the
//! product machine from a given pair of start states.

use crate::{FsmError, StateId, Stg};
use hwm_logic::Bits;
use std::collections::{HashSet, VecDeque};

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// The machines agree on every reachable input sequence.
    Equivalent,
    /// A counterexample input sequence on which the outputs differ.
    Counterexample(Vec<Bits>),
}

impl Equivalence {
    /// Whether the machines were found equivalent.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::Equivalent)
    }
}

/// Checks that `a` (from `start_a`) and `b` (from `start_b`) produce the same
/// outputs for every input sequence, by product-machine BFS under the exact
/// `step_or_hold` semantics.
///
/// # Errors
///
/// * [`FsmError::WidthMismatch`] when the machines have different interfaces;
/// * [`FsmError::BudgetExceeded`] when more than `max_pairs` product states
///   are visited or the input space is too wide to enumerate.
pub fn io_equivalent(
    a: &Stg,
    start_a: StateId,
    b: &Stg,
    start_b: StateId,
    max_pairs: usize,
) -> Result<Equivalence, FsmError> {
    if a.num_inputs() != b.num_inputs() {
        return Err(FsmError::WidthMismatch {
            expected: a.num_inputs(),
            got: b.num_inputs(),
        });
    }
    if a.num_outputs() != b.num_outputs() {
        return Err(FsmError::WidthMismatch {
            expected: a.num_outputs(),
            got: b.num_outputs(),
        });
    }
    let nb = a.num_inputs();
    if nb > crate::paths::MAX_ENUMERATED_INPUT_BITS {
        return Err(FsmError::BudgetExceeded {
            budget: crate::paths::MAX_ENUMERATED_INPUT_BITS,
        });
    }
    let n_inputs = 1u64 << nb;
    let mut seen: HashSet<(StateId, StateId)> = HashSet::new();
    // Store the input sequence leading to each pair for counterexamples.
    let mut queue: VecDeque<(StateId, StateId, Vec<Bits>)> = VecDeque::new();
    seen.insert((start_a, start_b));
    queue.push_back((start_a, start_b, Vec::new()));
    while let Some((sa, sb, path)) = queue.pop_front() {
        if seen.len() > max_pairs {
            return Err(FsmError::BudgetExceeded { budget: max_pairs });
        }
        for v in 0..n_inputs {
            let input = Bits::from_u64(v, nb);
            let (na, oa) = a.step_or_hold(sa, &input);
            let (nb2, ob) = b.step_or_hold(sb, &input);
            if oa != ob {
                let mut cex = path.clone();
                cex.push(input);
                return Ok(Equivalence::Counterexample(cex));
            }
            if seen.insert((na, nb2)) {
                let mut next_path = path.clone();
                next_path.push(input);
                queue.push_back((na, nb2, next_path));
            }
        }
    }
    Ok(Equivalence::Equivalent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_equals_itself() {
        let stg = Stg::ring_counter(5, 2);
        let eq = io_equivalent(&stg, stg.reset_state(), &stg, stg.reset_state(), 1000).unwrap();
        assert!(eq.is_equivalent());
    }

    #[test]
    fn absorbed_copy_still_equivalent_from_reset() {
        let original = Stg::ring_counter(4, 2);
        let mut boosted = original.clone();
        let extra = Stg::ring_counter(6, 2);
        boosted.absorb(&extra, "added_").unwrap();
        let eq = io_equivalent(
            &original,
            original.reset_state(),
            &boosted,
            boosted.reset_state(),
            10_000,
        )
        .unwrap();
        assert!(eq.is_equivalent(), "adding disconnected states must not change behaviour");
    }

    #[test]
    fn detects_output_difference() {
        use hwm_logic::Cube;
        let a = Stg::ring_counter(3, 2);
        // Same structure, but state 2's output is corrupted to 3.
        let mut b = Stg::new(1, 2);
        for i in 0..3 {
            b.add_state(format!("q{i}"));
        }
        for i in 0..3u64 {
            let here = StateId::from_index(i as usize);
            let next = StateId::from_index(((i + 1) % 3) as usize);
            let value = if i == 2 { 3 } else { i };
            let out = Cube::from_minterm_u64(value, 2);
            b.add_transition(here, "1".parse().unwrap(), next, out.clone()).unwrap();
            b.add_transition(here, "0".parse().unwrap(), here, out).unwrap();
        }
        b.set_reset(StateId::from_index(0));
        let eq = io_equivalent(&a, a.reset_state(), &b, b.reset_state(), 1000).unwrap();
        match eq {
            Equivalence::Counterexample(cex) => {
                // Replaying the counterexample must expose the difference.
                let (_, oa) = a.run(a.reset_state(), &cex);
                let (_, ob) = b.run(b.reset_state(), &cex);
                assert_ne!(oa.last(), ob.last());
            }
            Equivalence::Equivalent => panic!("difference not detected"),
        }
    }

    #[test]
    fn interface_mismatch_rejected() {
        let a = Stg::ring_counter(3, 1);
        let b = Stg::ring_counter(3, 2);
        assert!(io_equivalent(&a, a.reset_state(), &b, b.reset_state(), 10).is_err());
    }

    #[test]
    fn budget_enforced() {
        let a = Stg::ring_counter(64, 1);
        let b = Stg::ring_counter(64, 1);
        let r = io_equivalent(&a, a.reset_state(), &b, b.reset_state(), 3);
        assert!(matches!(r, Err(FsmError::BudgetExceeded { .. })));
    }
}
