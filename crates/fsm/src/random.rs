//! Random STG generation for tests and experiments.

use crate::{StateId, Stg};
use hwm_logic::{Cover, Cube, Tri};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// Derives the seed for item `index` of a batch from the batch's master
/// seed — the workspace-wide convention for seeding one RNG per work item
/// so that parallel generation is independent of scheduling. The
/// golden-ratio multiply spreads consecutive indices across the 64-bit
/// space before `seed_from_u64`'s own SplitMix diffusion.
pub fn indexed_seed(master: u64, index: u64) -> u64 {
    master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// [`random_stg`] as item `index` of a seeded batch: generates the STG
/// with its own RNG seeded by [`indexed_seed`]`(master, index)`. A batch
/// of machines built this way is identical no matter how the indices are
/// sharded across threads.
pub fn random_stg_indexed(
    states: usize,
    input_bits: usize,
    output_bits: usize,
    extra_edges_per_state: usize,
    master: u64,
    index: u64,
) -> Stg {
    random_stg(
        states,
        input_bits,
        output_bits,
        extra_edges_per_state,
        indexed_seed(master, index),
    )
}

/// Generates a random deterministic, complete STG with pairwise-disjoint
/// transition cubes.
///
/// Every state gets `extra_edges_per_state` edges on distinct random input
/// minterms to random destinations, a spanning chain guarantees that every
/// state is reachable from the reset state, and the remaining input space
/// of each state becomes explicit hold transitions — so the machine is
/// complete and strictly deterministic (no priority resolution needed).
///
/// # Example
///
/// ```
/// let stg = hwm_fsm::random_stg(10, 3, 2, 2, 99);
/// assert_eq!(stg.state_count(), 10);
/// assert!(stg.is_complete());
/// assert!(stg.is_deterministic());
/// ```
pub fn random_stg(
    states: usize,
    input_bits: usize,
    output_bits: usize,
    extra_edges_per_state: usize,
    seed: u64,
) -> Stg {
    assert!(states >= 1, "need at least one state");
    assert!(input_bits <= 20, "input space must stay enumerable");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stg = Stg::new(input_bits, output_bits);
    stg.set_name(format!("random{states}x{input_bits}"));
    for i in 0..states {
        stg.add_state(format!("r{i}"));
    }
    let n_inputs = 1u64 << input_bits;
    let random_output = |rng: &mut StdRng| {
        let tris: Vec<Tri> = (0..output_bits)
            .map(|_| if rng.random_bool(0.5) { Tri::One } else { Tri::Zero })
            .collect();
        Cube::from_tris(&tris)
    };
    // (state, input value) pairs already used by a specific edge.
    let mut used: HashSet<(usize, u64)> = HashSet::new();
    let pick_unused = |rng: &mut StdRng, used: &mut HashSet<(usize, u64)>, s: usize| {
        for _ in 0..(4 * n_inputs) {
            let v = rng.random_range(0..n_inputs);
            if used.insert((s, v)) {
                return Some(v);
            }
        }
        None
    };
    // Spanning chain for reachability.
    for i in 1..states {
        let v = pick_unused(&mut rng, &mut used, i - 1).expect("input space exhausted");
        let out = random_output(&mut rng);
        stg.add_transition(
            StateId::from_index(i - 1),
            Cube::from_minterm_u64(v, input_bits),
            StateId::from_index(i),
            out,
        )
        .expect("valid by construction");
    }
    // Extra random edges on fresh input values.
    for i in 0..states {
        for _ in 0..extra_edges_per_state {
            let Some(v) = pick_unused(&mut rng, &mut used, i) else {
                break;
            };
            let to = rng.random_range(0..states);
            let out = random_output(&mut rng);
            stg.add_transition(
                StateId::from_index(i),
                Cube::from_minterm_u64(v, input_bits),
                StateId::from_index(to),
                out,
            )
            .expect("valid by construction");
        }
    }
    // Explicit hold transitions on the complement of each state's used
    // input values, keeping the machine complete AND strictly deterministic.
    for i in 0..states {
        let used_cover = Cover::from_cubes(
            input_bits,
            used.iter()
                .filter(|(s, _)| *s == i)
                .map(|&(_, v)| Cube::from_minterm_u64(v, input_bits)),
        );
        let out = random_output(&mut rng);
        for cube in used_cover.complement().iter() {
            stg.add_transition(
                StateId::from_index(i),
                cube.clone(),
                StateId::from_index(i),
                out.clone(),
            )
            .expect("valid by construction");
        }
    }
    stg.set_reset(StateId::from_index(0));
    stg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_is_complete_deterministic_connected() {
        let stg = random_stg(20, 3, 2, 3, 7);
        assert!(stg.is_complete());
        assert!(stg.is_deterministic());
        assert_eq!(stg.reachable_from(stg.reset_state()).len(), 20);
    }

    #[test]
    fn deterministic_generation() {
        let a = random_stg(10, 2, 1, 2, 5);
        let b = random_stg(10, 2, 1, 2, 5);
        assert_eq!(a, b);
        let c = random_stg(10, 2, 1, 2, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn simulation_is_always_defined() {
        use hwm_logic::Bits;
        let stg = random_stg(8, 2, 1, 2, 3);
        let mut s = stg.reset_state();
        for v in 0..16u64 {
            let (next, _) = stg.step_or_hold(s, &Bits::from_u64(v % 4, 2));
            s = next;
        }
        // Every input has an explicit transition (completeness).
        for v in 0..4u64 {
            assert!(stg.step(s, &Bits::from_u64(v, 2)).is_some());
        }
    }

    #[test]
    fn indexed_batch_is_order_invariant() {
        // Items drawn by index are identical to items drawn in any other
        // order — the property the parallel harness relies on.
        let forward: Vec<Stg> =
            (0..4u64).map(|i| random_stg_indexed(8, 2, 1, 2, 500, i)).collect();
        let backward: Vec<Stg> =
            (0..4u64).rev().map(|i| random_stg_indexed(8, 2, 1, 2, 500, i)).collect();
        for (f, b) in forward.iter().zip(backward.iter().rev()) {
            assert_eq!(f, b);
        }
        assert_ne!(forward[0], forward[1]);
    }

    #[test]
    fn small_input_space_saturates_gracefully() {
        // 1 input bit, many requested edges: must not spin forever.
        let stg = random_stg(4, 1, 1, 5, 9);
        assert!(stg.is_complete());
        assert!(stg.is_deterministic());
    }
}
