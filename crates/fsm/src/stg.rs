//! The state transition graph.

use crate::FsmError;
use hwm_logic::{Bits, Cover, Cube};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a state within an [`Stg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Raw index of the state.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a state id from a raw index.
    ///
    /// Prefer the ids returned by [`Stg::add_state`]; this constructor exists
    /// for tables indexed by state.
    pub fn from_index(index: usize) -> StateId {
        StateId(index as u32)
    }
}

/// One edge of the STG: `from --input/output--> to`.
///
/// The input condition is a [`Cube`] over the machine's input bits; the
/// output is a cube over the output bits (don't-care output positions
/// resolve to 0 during simulation, matching SIS).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Input condition.
    pub input: Cube,
    /// Destination state.
    pub to: StateId,
    /// Output values.
    pub output: Cube,
}

/// A state transition graph (the control part of a sequential design).
///
/// Transitions are matched in insertion order during simulation, so an STG
/// with overlapping input cubes still behaves deterministically; the
/// [`Stg::is_deterministic`] check reports whether overlaps are consistent.
///
/// # Example
///
/// ```
/// use hwm_fsm::Stg;
/// use hwm_logic::Bits;
///
/// let mut stg = Stg::new(1, 1);
/// let s0 = stg.add_state("idle");
/// let s1 = stg.add_state("busy");
/// stg.add_transition_str(s0, "1", s1, "0").unwrap();
/// stg.add_transition_str(s0, "0", s0, "0").unwrap();
/// stg.add_transition_str(s1, "-", s0, "1").unwrap();
/// stg.set_reset(s0);
/// let (next, out) = stg.step(s0, &Bits::from_u64(1, 1)).unwrap();
/// assert_eq!(next, s1);
/// assert_eq!(out.low_u64(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stg {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    states: Vec<String>,
    transitions: Vec<Transition>,
    /// Transition indices grouped by source state.
    by_state: Vec<Vec<usize>>,
    reset: StateId,
}

impl Stg {
    /// Creates an empty STG with the given input/output bit widths.
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        Stg {
            name: "stg".to_string(),
            num_inputs,
            num_outputs,
            states: Vec::new(),
            transitions: Vec::new(),
            by_state: Vec::new(),
            reset: StateId(0),
        }
    }

    /// A complete `n`-state ring counter: one input bit advances the ring
    /// (input 0 holds), outputs report the low bits of the state index.
    /// A convenient well-understood original design for examples and tests.
    pub fn ring_counter(n: usize, num_outputs: usize) -> Self {
        assert!(n >= 1, "ring counter needs at least one state");
        let mut stg = Stg::new(1, num_outputs);
        for i in 0..n {
            stg.add_state(format!("q{i}"));
        }
        for i in 0..n {
            let here = StateId(i as u32);
            let next = StateId(((i + 1) % n) as u32);
            let out = Cube::from_minterm_u64((i as u64) & mask(num_outputs), num_outputs);
            stg.add_transition(here, "1".parse().unwrap(), next, out.clone())
                .expect("widths are consistent");
            stg.add_transition(here, "0".parse().unwrap(), here, out)
                .expect("widths are consistent");
        }
        stg.set_reset(StateId(0));
        stg
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of input bits.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output bits.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// State names, indexed by `StateId::index()`.
    pub fn state_names(&self) -> &[String] {
        &self.states
    }

    /// Name of one state.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.states[s.index()]
    }

    /// All transitions, in insertion (priority) order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions leaving `s`, in priority order.
    pub fn transitions_from(&self, s: StateId) -> impl Iterator<Item = &Transition> + '_ {
        self.by_state[s.index()].iter().map(move |&i| &self.transitions[i])
    }

    /// The reset (initial functional) state.
    pub fn reset_state(&self) -> StateId {
        self.reset
    }

    /// Sets the reset state.
    ///
    /// # Panics
    ///
    /// Panics if the state does not exist.
    pub fn set_reset(&mut self, s: StateId) {
        assert!(s.index() < self.states.len(), "unknown state {s:?}");
        self.reset = s;
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(name.into());
        self.by_state.push(Vec::new());
        id
    }

    /// Adds a transition.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::UnknownState`] or [`FsmError::WidthMismatch`].
    pub fn add_transition(
        &mut self,
        from: StateId,
        input: Cube,
        to: StateId,
        output: Cube,
    ) -> Result<(), FsmError> {
        for s in [from, to] {
            if s.index() >= self.states.len() {
                return Err(FsmError::UnknownState { index: s.index() });
            }
        }
        if input.width() != self.num_inputs {
            return Err(FsmError::WidthMismatch {
                expected: self.num_inputs,
                got: input.width(),
            });
        }
        if output.width() != self.num_outputs {
            return Err(FsmError::WidthMismatch {
                expected: self.num_outputs,
                got: output.width(),
            });
        }
        self.by_state[from.index()].push(self.transitions.len());
        self.transitions.push(Transition {
            from,
            input,
            to,
            output,
        });
        Ok(())
    }

    /// Adds a transition from PLA strings (`"1-0"` style).
    ///
    /// # Errors
    ///
    /// As [`Stg::add_transition`], plus cube parse errors mapped to
    /// [`FsmError::ParseKiss`] with line 0.
    pub fn add_transition_str(
        &mut self,
        from: StateId,
        input: &str,
        to: StateId,
        output: &str,
    ) -> Result<(), FsmError> {
        let input: Cube = input.parse().map_err(|e| FsmError::ParseKiss {
            line: 0,
            message: format!("{e}"),
        })?;
        let output: Cube = output.parse().map_err(|e| FsmError::ParseKiss {
            line: 0,
            message: format!("{e}"),
        })?;
        self.add_transition(from, input, to, output)
    }

    /// One simulation step: the first transition from `s` whose input cube
    /// covers `input` fires. Returns `None` when no transition matches.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != num_inputs()` or `s` is out of range.
    pub fn step(&self, s: StateId, input: &Bits) -> Option<(StateId, Bits)> {
        assert_eq!(input.len(), self.num_inputs, "input width mismatch");
        for &ti in &self.by_state[s.index()] {
            let t = &self.transitions[ti];
            if t.input.covers_minterm(input) {
                return Some((t.to, resolve_output(&t.output)));
            }
        }
        None
    }

    /// Like [`Stg::step`] but holds the state (with all-zero output) when no
    /// transition matches — the behaviour of synthesized logic whose
    /// unspecified entries were filled as "stay".
    pub fn step_or_hold(&self, s: StateId, input: &Bits) -> (StateId, Bits) {
        self.step(s, input)
            .unwrap_or_else(|| (s, Bits::zeros(self.num_outputs)))
    }

    /// Runs an input sequence from `start`, returning the visited states
    /// (excluding `start`) and the outputs.
    pub fn run(&self, start: StateId, inputs: &[Bits]) -> (Vec<StateId>, Vec<Bits>) {
        let mut s = start;
        let mut states = Vec::with_capacity(inputs.len());
        let mut outs = Vec::with_capacity(inputs.len());
        for i in inputs {
            let (next, out) = self.step_or_hold(s, i);
            s = next;
            states.push(s);
            outs.push(out);
        }
        (states, outs)
    }

    /// Whether every pair of overlapping input cubes from the same state
    /// agrees on destination and output.
    pub fn is_deterministic(&self) -> bool {
        self.nondeterministic_state().is_none()
    }

    /// The first state with genuinely conflicting transitions, if any.
    pub fn nondeterministic_state(&self) -> Option<StateId> {
        for (s, idxs) in self.by_state.iter().enumerate() {
            for (a, &i) in idxs.iter().enumerate() {
                for &j in &idxs[a + 1..] {
                    let (ti, tj) = (&self.transitions[i], &self.transitions[j]);
                    if ti.input.intersects(&tj.input) && (ti.to != tj.to || ti.output != tj.output)
                    {
                        return Some(StateId(s as u32));
                    }
                }
            }
        }
        None
    }

    /// Whether every state specifies a next state for every input vector.
    pub fn is_complete(&self) -> bool {
        (0..self.states.len()).all(|s| {
            let cover = Cover::from_cubes(
                self.num_inputs,
                self.by_state[s].iter().map(|&i| self.transitions[i].input.clone()),
            );
            cover.is_tautology()
        })
    }

    /// States reachable from `start` (including it), in BFS order.
    pub fn reachable_from(&self, start: StateId) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(s) = queue.pop_front() {
            order.push(s);
            for t in self.transitions_from(s) {
                if !seen[t.to.index()] {
                    seen[t.to.index()] = true;
                    queue.push_back(t.to);
                }
            }
        }
        order
    }

    /// Merges `other` into `self`: every state and transition of `other` is
    /// copied (state names prefixed), and the mapping from `other`'s state
    /// ids to the new ids is returned. Input/output widths must match.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::WidthMismatch`] when the interfaces differ.
    pub fn absorb(&mut self, other: &Stg, prefix: &str) -> Result<Vec<StateId>, FsmError> {
        if other.num_inputs != self.num_inputs {
            return Err(FsmError::WidthMismatch {
                expected: self.num_inputs,
                got: other.num_inputs,
            });
        }
        if other.num_outputs != self.num_outputs {
            return Err(FsmError::WidthMismatch {
                expected: self.num_outputs,
                got: other.num_outputs,
            });
        }
        let map: Vec<StateId> = other
            .states
            .iter()
            .map(|name| self.add_state(format!("{prefix}{name}")))
            .collect();
        for t in &other.transitions {
            self.add_transition(
                map[t.from.index()],
                t.input.clone(),
                map[t.to.index()],
                t.output.clone(),
            )?;
        }
        Ok(map)
    }
}

impl fmt::Display for Stg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} states, {} transitions, {} in / {} out",
            self.name,
            self.states.len(),
            self.transitions.len(),
            self.num_inputs,
            self.num_outputs
        )
    }
}

fn resolve_output(cube: &Cube) -> Bits {
    let mut bits = Bits::zeros(cube.width());
    for (v, t) in cube.tris().enumerate() {
        if t == Some(hwm_logic::Tri::One) {
            bits.set(v, true);
        }
    }
    bits
}

fn mask(bits: usize) -> u64 {
    if bits >= 64 {
        !0
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_counter_cycles() {
        let stg = Stg::ring_counter(4, 2);
        assert_eq!(stg.state_count(), 4);
        assert!(stg.is_deterministic());
        assert!(stg.is_complete());
        let mut s = stg.reset_state();
        for expect in [1u64, 2, 3, 0, 1] {
            let (next, _) = stg.step(s, &Bits::from_u64(1, 1)).unwrap();
            assert_eq!(next.index() as u64, expect);
            s = next;
        }
        // Input 0 holds.
        let (hold, _) = stg.step(s, &Bits::from_u64(0, 1)).unwrap();
        assert_eq!(hold, s);
    }

    #[test]
    fn width_checks() {
        let mut stg = Stg::new(2, 1);
        let s = stg.add_state("s");
        assert!(matches!(
            stg.add_transition_str(s, "1", s, "0"),
            Err(FsmError::WidthMismatch { .. })
        ));
        assert!(matches!(
            stg.add_transition_str(s, "11", s, "00"),
            Err(FsmError::WidthMismatch { .. })
        ));
        assert!(stg.add_transition_str(s, "1-", s, "1").is_ok());
    }

    #[test]
    fn unknown_state_rejected() {
        let mut stg = Stg::new(1, 1);
        let s = stg.add_state("s");
        let ghost = StateId::from_index(7);
        assert!(matches!(
            stg.add_transition_str(s, "1", ghost, "0"),
            Err(FsmError::UnknownState { .. })
        ));
    }

    #[test]
    fn nondeterminism_detected() {
        let mut stg = Stg::new(1, 1);
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.add_transition_str(a, "1", a, "0").unwrap();
        stg.add_transition_str(a, "-", b, "0").unwrap();
        assert_eq!(stg.nondeterministic_state(), Some(a));
        // Consistent overlap is fine.
        let mut ok = Stg::new(1, 1);
        let a = ok.add_state("a");
        ok.add_transition_str(a, "1", a, "0").unwrap();
        ok.add_transition_str(a, "-", a, "0").unwrap();
        assert!(ok.is_deterministic());
    }

    #[test]
    fn completeness() {
        let mut stg = Stg::new(2, 1);
        let a = stg.add_state("a");
        stg.add_transition_str(a, "1-", a, "0").unwrap();
        assert!(!stg.is_complete());
        stg.add_transition_str(a, "0-", a, "0").unwrap();
        assert!(stg.is_complete());
    }

    #[test]
    fn step_or_hold_defaults() {
        let mut stg = Stg::new(1, 2);
        let a = stg.add_state("a");
        stg.add_transition_str(a, "1", a, "11").unwrap();
        let (s, out) = stg.step_or_hold(a, &Bits::from_u64(0, 1));
        assert_eq!(s, a);
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn run_sequence() {
        let stg = Stg::ring_counter(3, 2);
        let inputs = vec![Bits::from_u64(1, 1); 4];
        let (states, outs) = stg.run(stg.reset_state(), &inputs);
        assert_eq!(
            states.iter().map(|s| s.index()).collect::<Vec<_>>(),
            vec![1, 2, 0, 1]
        );
        assert_eq!(outs[0].low_u64(), 0); // output of the edge leaving q0
    }

    #[test]
    fn reachability() {
        let mut stg = Stg::new(1, 1);
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        let _island = stg.add_state("island");
        stg.add_transition_str(a, "-", b, "0").unwrap();
        let r = stg.reachable_from(a);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn absorb_prefixes_and_maps() {
        let mut big = Stg::ring_counter(3, 1);
        let little = Stg::ring_counter(2, 1);
        let map = big.absorb(&little, "added_").unwrap();
        assert_eq!(big.state_count(), 5);
        assert_eq!(big.state_name(map[0]), "added_q0");
        // The absorbed machine still steps internally.
        let (next, _) = big.step(map[0], &Bits::from_u64(1, 1)).unwrap();
        assert_eq!(next, map[1]);
    }

    #[test]
    fn output_dontcare_resolves_to_zero() {
        let mut stg = Stg::new(1, 3);
        let a = stg.add_state("a");
        stg.add_transition_str(a, "-", a, "1-0").unwrap();
        let (_, out) = stg.step(a, &Bits::from_u64(0, 1)).unwrap();
        assert!(out.get(0));
        assert!(!out.get(1));
        assert!(!out.get(2));
    }
}
