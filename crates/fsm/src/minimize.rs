//! State minimization by partition refinement (Moore/Hopcroft style).
//!
//! The designer minimizes the control FSM *before* boosting it — fewer
//! original states mean a smaller `m` in the §4.2 probability analysis and
//! cheaper functional logic. Works on complete, deterministic machines with
//! an enumerable input alphabet.

use crate::{FsmError, StateId, Stg};
use hwm_logic::{Bits, Cube};
use std::collections::HashMap;

/// Result of minimizing an STG.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The reduced machine.
    pub stg: Stg,
    /// For each original state, the reduced state it maps to.
    pub class_of: Vec<StateId>,
}

/// Minimizes a complete, deterministic STG by partition refinement.
///
/// # Errors
///
/// * [`FsmError::Nondeterministic`] when transitions conflict;
/// * [`FsmError::BudgetExceeded`] when the input space is too wide to
///   enumerate (more than [`crate::paths::MAX_ENUMERATED_INPUT_BITS`] bits).
pub fn minimize(stg: &Stg) -> Result<Minimized, FsmError> {
    let _span = hwm_trace::span("fsm.minimize");
    if let Some(s) = stg.nondeterministic_state() {
        return Err(FsmError::Nondeterministic { state: s.index() });
    }
    let b = stg.num_inputs();
    if b > crate::paths::MAX_ENUMERATED_INPUT_BITS {
        return Err(FsmError::BudgetExceeded {
            budget: crate::paths::MAX_ENUMERATED_INPUT_BITS,
        });
    }
    let n = stg.state_count();
    let n_inputs = 1usize << b;

    // Precompute the step table (next state, output) per (state, input).
    let mut next = vec![0u32; n * n_inputs];
    let mut outs: Vec<Bits> = Vec::with_capacity(n * n_inputs);
    for s in 0..n {
        for v in 0..n_inputs {
            let input = Bits::from_u64(v as u64, b);
            let (t, o) = stg.step_or_hold(StateId::from_index(s), &input);
            next[s * n_inputs + v] = t.index() as u32;
            outs.push(o);
        }
    }

    // Initial partition: by full output signature.
    let mut block = vec![0u32; n];
    {
        let mut sig_ids: HashMap<Vec<Bits>, u32> = HashMap::new();
        for s in 0..n {
            let sig: Vec<Bits> = (0..n_inputs).map(|v| outs[s * n_inputs + v].clone()).collect();
            let id = sig_ids.len() as u32;
            let e = *sig_ids.entry(sig).or_insert(id);
            block[s] = e;
        }
    }

    // Refinement to a fixed point.
    loop {
        let mut sig_ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut new_block = vec![0u32; n];
        for s in 0..n {
            let succ: Vec<u32> = (0..n_inputs)
                .map(|v| block[next[s * n_inputs + v] as usize])
                .collect();
            let key = (block[s], succ);
            let id = sig_ids.len() as u32;
            let e = *sig_ids.entry(key).or_insert(id);
            new_block[s] = e;
        }
        let stable = new_block == block;
        block = new_block;
        if stable {
            break;
        }
    }

    // Build the reduced machine; block of the reset state becomes reset.
    let n_blocks = block.iter().copied().max().map_or(0, |m| m as usize + 1);
    hwm_trace::counter("states_in", n as u64);
    hwm_trace::counter("states_out", n_blocks as u64);
    let mut reduced = Stg::new(b, stg.num_outputs());
    reduced.set_name(format!("{}_min", stg.name()));
    // Representative original state per block (first occurrence).
    let mut repr: Vec<Option<usize>> = vec![None; n_blocks];
    for (s, &blk) in block.iter().enumerate() {
        let slot = &mut repr[blk as usize];
        if slot.is_none() {
            *slot = Some(s);
        }
    }
    for blk in 0..n_blocks {
        reduced.add_state(format!("c{blk}"));
    }
    for (blk, slot) in repr.iter().enumerate() {
        let s = slot.expect("non-empty block");
        for v in 0..n_inputs {
            let t = block[next[s * n_inputs + v] as usize];
            let out = &outs[s * n_inputs + v];
            let out_cube = Cube::from_minterm(out);
            reduced
                .add_transition(
                    StateId::from_index(blk),
                    Cube::from_minterm_u64(v as u64, b),
                    StateId::from_index(t as usize),
                    out_cube,
                )
                .expect("widths consistent");
        }
    }
    reduced.set_reset(StateId::from_index(block[stg.reset_state().index()] as usize));
    Ok(Minimized {
        stg: reduced,
        class_of: block.iter().map(|&b| StateId::from_index(b as usize)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::io_equivalent;

    #[test]
    fn duplicated_states_collapse() {
        // Two copies of a 3-state ring, cross-wired so they are equivalent.
        let mut stg = Stg::new(1, 2);
        for i in 0..6 {
            stg.add_state(format!("s{i}"));
        }
        for i in 0..6usize {
            let here = StateId::from_index(i);
            let next = StateId::from_index((i + 1) % 3 + (i / 3) * 3);
            let out = Cube::from_minterm_u64((i % 3) as u64, 2);
            stg.add_transition(here, "1".parse().unwrap(), next, out.clone()).unwrap();
            stg.add_transition(here, "0".parse().unwrap(), here, out).unwrap();
        }
        stg.set_reset(StateId::from_index(0));
        let min = minimize(&stg).unwrap();
        assert_eq!(min.stg.state_count(), 3);
        // Same behaviour.
        let eq = io_equivalent(&stg, stg.reset_state(), &min.stg, min.stg.reset_state(), 10_000)
            .unwrap();
        assert!(eq.is_equivalent());
        // States i and i+3 are in the same class.
        for i in 0..3 {
            assert_eq!(min.class_of[i], min.class_of[i + 3]);
        }
    }

    #[test]
    fn corpus_machines_minimize_as_expected() {
        // traffic/arbiter/detector are minimal as written; memctl's
        // `reading` and `writing` states are Mealy-equivalent (both emit
        // the same command and go to precharge) — the minimizer collapses
        // them, exactly what a designer runs this pass for.
        for (name, expected) in [("traffic", 4usize), ("arbiter", 4), ("detector", 4), ("memctl", 5)] {
            let stg = crate::corpus::load(name);
            let min = minimize(&stg).unwrap();
            assert_eq!(min.stg.state_count(), expected, "{name}");
            let eq = io_equivalent(
                &stg,
                stg.reset_state(),
                &min.stg,
                min.stg.reset_state(),
                100_000,
            )
            .unwrap();
            assert!(eq.is_equivalent(), "{name}");
        }
    }

    #[test]
    fn random_machines_minimize_equivalently() {
        for seed in 0..8 {
            let stg = crate::random_stg(12, 2, 2, 2, 400 + seed);
            let min = minimize(&stg).unwrap();
            assert!(min.stg.state_count() <= stg.state_count());
            let eq = io_equivalent(
                &stg,
                stg.reset_state(),
                &min.stg,
                min.stg.reset_state(),
                100_000,
            )
            .unwrap();
            assert!(eq.is_equivalent(), "seed {seed}");
        }
    }

    #[test]
    fn nondeterministic_rejected() {
        let mut stg = Stg::new(1, 1);
        let a = stg.add_state("a");
        let c = stg.add_state("b");
        stg.add_transition_str(a, "1", c, "0").unwrap();
        stg.add_transition_str(a, "-", a, "1").unwrap();
        assert!(matches!(
            minimize(&stg),
            Err(FsmError::Nondeterministic { .. })
        ));
    }

    #[test]
    fn wide_inputs_rejected() {
        let mut stg = Stg::new(20, 1);
        stg.add_state("a");
        assert!(matches!(
            minimize(&stg),
            Err(FsmError::BudgetExceeded { .. })
        ));
    }
}
