//! A small corpus of realistic control FSMs in KISS2, for tests, examples
//! and experiments that want something richer than a ring counter.
//!
//! Each machine is complete (every input specified in every state) and
//! strictly deterministic, so it synthesizes and locks without surprises.

use crate::{kiss, Stg};

/// A traffic-light controller: two roads with sensors, green/yellow phases
/// with a yellow interlock. Inputs: `car_ns`, `car_ew`. Outputs:
/// `ns_green`, `ns_yellow`, `ew_green`, `ew_yellow` (the lights while in
/// the source state of each transition).
pub const TRAFFIC: &str = "\
.i 2
.o 4
.r green_ns
-0 green_ns green_ns 1000
-1 green_ns yellow_ns 1000
-- yellow_ns green_ew 0100
0- green_ew green_ew 0010
1- green_ew yellow_ew 0010
-- yellow_ew green_ns 0001
.e
";

/// A 2-requester round-robin bus arbiter. Inputs: `req0`, `req1`. Outputs:
/// `gnt0`, `gnt1`.
pub const ARBITER: &str = "\
.i 2
.o 2
.r idle0
00 idle0 idle0 00
1- idle0 grant0 10
01 idle0 grant1 01
1- grant0 grant0 10
01 grant0 grant1 01
00 grant0 idle1 00
-1 grant1 grant1 01
10 grant1 grant0 10
00 grant1 idle0 00
00 idle1 idle1 00
-1 idle1 grant1 01
10 idle1 grant0 10
.e
";

/// A \"1011\" sequence detector (Mealy). Input: the serial bit. Output:
/// `detected`.
pub const DETECTOR: &str = "\
.i 1
.o 1
.r s0
0 s0 s0 0
1 s0 s1 0
0 s1 s10 0
1 s1 s1 0
0 s10 s0 0
1 s10 s101 0
0 s101 s10 0
1 s101 s1 1
.e
";

/// A tiny memory-controller command sequencer: activate → read/write →
/// precharge, with an idle self-loop. Inputs: `go`, `wr`. Outputs:
/// `cmd_act`, `cmd_rw`, `cmd_pre`.
pub const MEMCTL: &str = "\
.i 2
.o 3
.r idle
0- idle idle 000
1- idle activate 100
-- activate row_open 000
-0 row_open reading 010
-1 row_open writing 010
-- reading precharge 001
-- writing precharge 001
-- precharge idle 000
.e
";

/// Every corpus machine, as (name, KISS2 text).
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("traffic", TRAFFIC),
        ("arbiter", ARBITER),
        ("detector", DETECTOR),
        ("memctl", MEMCTL),
    ]
}

/// Parses one corpus machine.
///
/// # Panics
///
/// Panics if the built-in text is invalid (checked by tests).
pub fn load(name: &str) -> Stg {
    let (_, text) = all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown corpus machine {name:?}"));
    let mut stg = kiss::parse(text).expect("corpus machines are valid KISS2");
    stg.set_name(name);
    stg
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwm_logic::Bits;

    #[test]
    fn all_machines_parse_complete_deterministic() {
        for (name, text) in all() {
            let stg = kiss::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(stg.is_complete(), "{name} is incomplete");
            assert!(stg.is_deterministic(), "{name} is nondeterministic");
            assert!(
                stg.reachable_from(stg.reset_state()).len() == stg.state_count(),
                "{name} has unreachable states"
            );
        }
    }

    #[test]
    fn traffic_light_interlocks() {
        let stg = load("traffic");
        // From reset (NS green), a car on EW takes us through yellow before
        // EW gets green — never green/green, and a yellow in between.
        let mut s = stg.reset_state();
        let mut trace = Vec::new();
        for _ in 0..10 {
            let (next, out) = stg.step_or_hold(s, &Bits::from_u64(0b10, 2)); // car_ew
            s = next;
            trace.push(out.clone());
            assert!(!(out.get(0) && out.get(2)), "both roads green");
        }
        let first_ew_green = trace.iter().position(|o| o.get(2)).expect("EW gets green");
        assert!(
            trace[..first_ew_green].iter().any(|o| o.get(1)),
            "a NS yellow must precede the EW green: {trace:?}"
        );
    }

    #[test]
    fn detector_fires_on_1011_only() {
        let stg = load("detector");
        let run = |bits: &[u64]| {
            let mut s = stg.reset_state();
            let mut fired = 0;
            for &b in bits {
                let (next, out) = stg.step_or_hold(s, &Bits::from_u64(b, 1));
                s = next;
                fired += out.low_u64();
            }
            fired
        };
        assert_eq!(run(&[1, 0, 1, 1]), 1);
        assert_eq!(run(&[1, 1, 0, 1, 1]), 1); // overlap allowed via s1
        assert_eq!(run(&[0, 0, 1, 0, 0]), 0);
        assert_eq!(run(&[1, 0, 1, 1, 0, 1, 1]), 2); // overlapping detections
    }

    #[test]
    fn arbiter_grants_follow_requests() {
        let stg = load("arbiter");
        let mut s = stg.reset_state();
        // req0 only → grant0.
        let (next, out) = stg.step_or_hold(s, &Bits::from_u64(0b01, 2));
        s = next;
        assert!(out.get(0));
        assert!(!out.get(1));
        // both drop, then req1 → grant1.
        let (next, _) = stg.step_or_hold(s, &Bits::from_u64(0, 2));
        s = next;
        let (_, out) = stg.step_or_hold(s, &Bits::from_u64(0b10, 2));
        assert!(out.get(1));
    }

    #[test]
    fn load_panics_on_unknown() {
        let r = std::panic::catch_unwind(|| load("nonsense"));
        assert!(r.is_err());
    }
}
