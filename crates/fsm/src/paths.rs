//! Input-sequence search: the designer's side of the key computation.
//!
//! The foundry sees a locked chip in some power-up state; only the designer,
//! who knows the transition table, can compute an input sequence driving the
//! machine to the reset state (the paper's §4.1). These searches operate on
//! the *exact* simulation semantics of [`Stg::step_or_hold`], enumerating
//! concrete input vectors, so a found sequence is guaranteed to replay on
//! the chip model.

use crate::{FsmError, StateId, Stg};
use hwm_logic::Bits;
use rand::Rng;
use std::collections::{HashMap, VecDeque};

/// Maximum input width for exhaustive input enumeration (2^12 vectors per
/// state).
pub const MAX_ENUMERATED_INPUT_BITS: usize = 12;

fn check_input_width(stg: &Stg) -> Result<(), FsmError> {
    if stg.num_inputs() > MAX_ENUMERATED_INPUT_BITS {
        return Err(FsmError::BudgetExceeded {
            budget: MAX_ENUMERATED_INPUT_BITS,
        });
    }
    Ok(())
}

/// Breadth-first shortest input sequence driving `from` to `to` under the
/// exact `step_or_hold` semantics. Returns `None` when `to` is unreachable.
///
/// # Errors
///
/// Returns [`FsmError::BudgetExceeded`] when the machine has more input bits
/// than [`MAX_ENUMERATED_INPUT_BITS`].
pub fn shortest_input_sequence(
    stg: &Stg,
    from: StateId,
    to: StateId,
) -> Result<Option<Vec<Bits>>, FsmError> {
    check_input_width(stg)?;
    if from == to {
        return Ok(Some(Vec::new()));
    }
    let b = stg.num_inputs();
    let n_inputs = 1usize << b;
    let mut pred: HashMap<StateId, (StateId, u64)> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(s) = queue.pop_front() {
        for v in 0..n_inputs {
            let input = Bits::from_u64(v as u64, b);
            let (next, _) = stg.step_or_hold(s, &input);
            if next != s && next != from && !pred.contains_key(&next) {
                pred.insert(next, (s, v as u64));
                if next == to {
                    // Reconstruct.
                    let mut seq = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (p, v) = pred[&cur];
                        seq.push(Bits::from_u64(v, b));
                        cur = p;
                    }
                    seq.reverse();
                    return Ok(Some(seq));
                }
                queue.push_back(next);
            }
        }
    }
    Ok(None)
}

/// Distance (in clock cycles) from every state to `target`, or `usize::MAX`
/// when the target is unreachable from that state. Reverse BFS over the
/// exact step semantics.
///
/// # Errors
///
/// Returns [`FsmError::BudgetExceeded`] for machines with too many input
/// bits.
pub fn distances_to(stg: &Stg, target: StateId) -> Result<Vec<usize>, FsmError> {
    check_input_width(stg)?;
    let b = stg.num_inputs();
    let n_inputs = 1usize << b;
    // Build the reverse adjacency under exact semantics.
    let n = stg.state_count();
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for s in 0..n {
        let sid = StateId::from_index(s);
        for v in 0..n_inputs {
            let input = Bits::from_u64(v as u64, b);
            let (next, _) = stg.step_or_hold(sid, &input);
            if next.index() != s {
                rev[next.index()].push(s as u32);
            }
        }
    }
    let mut dist = vec![usize::MAX; n];
    dist[target.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(target.index());
    while let Some(s) = queue.pop_front() {
        for &p in &rev[s] {
            if dist[p as usize] == usize::MAX {
                dist[p as usize] = dist[s] + 1;
                queue.push_back(p as usize);
            }
        }
    }
    Ok(dist)
}

/// Finds up to `count` *distinct* input sequences from `from` to `to`, each
/// at most `max_len` steps, by distance-guided randomized walks. The paper
/// requires a multiplicity of keys per power-up state (§5.2); the cycles in
/// the added STG make these walks diverge.
///
/// # Errors
///
/// Returns [`FsmError::BudgetExceeded`] for machines with too many input
/// bits.
pub fn diversified_input_sequences<R: Rng + ?Sized>(
    stg: &Stg,
    from: StateId,
    to: StateId,
    count: usize,
    max_len: usize,
    rng: &mut R,
) -> Result<Vec<Vec<Bits>>, FsmError> {
    let dist = distances_to(stg, to)?;
    if dist[from.index()] == usize::MAX {
        return Ok(Vec::new());
    }
    let b = stg.num_inputs();
    let n_inputs = 1u64 << b;
    let mut found: Vec<Vec<Bits>> = Vec::new();
    let attempts = count * 20;
    'outer: for attempt in 0..attempts {
        if found.len() >= count {
            break;
        }
        // Later attempts tolerate more detours.
        let slack = attempt / count;
        let mut s = from;
        let mut seq = Vec::new();
        let mut budget = max_len;
        while s != to {
            if budget == 0 {
                continue 'outer;
            }
            budget -= 1;
            // Gather candidate inputs grouped by how much they descend.
            let mut best: Vec<u64> = Vec::new();
            let mut detour: Vec<u64> = Vec::new();
            for v in 0..n_inputs {
                let input = Bits::from_u64(v, b);
                let (next, _) = stg.step_or_hold(s, &input);
                let d = dist[next.index()];
                if d == usize::MAX {
                    continue;
                }
                if d < dist[s.index()] {
                    best.push(v);
                } else if d <= dist[s.index()] + 1 && next != s {
                    detour.push(v);
                }
            }
            let take_detour = !detour.is_empty() && slack > 0 && rng.random_bool(0.3);
            let pool = if take_detour || best.is_empty() { &detour } else { &best };
            if pool.is_empty() {
                continue 'outer;
            }
            let v = pool[rng.random_range(0..pool.len())];
            let input = Bits::from_u64(v, b);
            let (next, _) = stg.step_or_hold(s, &input);
            seq.push(input);
            s = next;
        }
        if !found.contains(&seq) {
            found.push(seq);
        }
    }
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shortest_on_ring() {
        let stg = Stg::ring_counter(6, 1);
        let from = StateId::from_index(2);
        let to = StateId::from_index(5);
        let seq = shortest_input_sequence(&stg, from, to).unwrap().unwrap();
        assert_eq!(seq.len(), 3);
        // Replay check.
        let (states, _) = stg.run(from, &seq);
        assert_eq!(*states.last().unwrap(), to);
    }

    #[test]
    fn identity_sequence_is_empty() {
        let stg = Stg::ring_counter(3, 1);
        let s = StateId::from_index(1);
        assert_eq!(shortest_input_sequence(&stg, s, s).unwrap().unwrap().len(), 0);
    }

    #[test]
    fn unreachable_gives_none() {
        let mut stg = Stg::new(1, 1);
        let a = stg.add_state("a");
        let b = stg.add_state("b");
        stg.add_transition_str(a, "-", a, "0").unwrap();
        stg.add_transition_str(b, "-", a, "0").unwrap();
        assert!(shortest_input_sequence(&stg, a, b).unwrap().is_none());
    }

    #[test]
    fn distances_match_bfs() {
        let stg = Stg::ring_counter(5, 1);
        let d = distances_to(&stg, StateId::from_index(0)).unwrap();
        assert_eq!(d, vec![0, 4, 3, 2, 1]);
    }

    #[test]
    fn diversified_sequences_are_distinct_and_valid() {
        // A ring with shortcut edges has multiple genuinely different paths.
        let mut wide = Stg::new(2, 1);
        for i in 0..8 {
            wide.add_state(format!("q{i}"));
        }
        for i in 0..8u32 {
            let here = StateId::from_index(i as usize);
            let next = StateId::from_index(((i + 1) % 8) as usize);
            let skip = StateId::from_index(((i + 3) % 8) as usize);
            wide.add_transition_str(here, "-1", next, "0").unwrap();
            wide.add_transition_str(here, "10", skip, "0").unwrap();
            wide.add_transition_str(here, "00", here, "0").unwrap();
        }
        wide.set_reset(StateId::from_index(0));
        let stg = wide;
        let mut rng = StdRng::seed_from_u64(42);
        let from = StateId::from_index(1);
        let to = StateId::from_index(0);
        let keys = diversified_input_sequences(&stg, from, to, 5, 40, &mut rng).unwrap();
        assert!(keys.len() >= 3, "expected several distinct keys, got {}", keys.len());
        for k in &keys {
            let (states, _) = stg.run(from, k);
            assert_eq!(*states.last().unwrap(), to, "key must replay to target");
        }
        // All distinct.
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn too_many_inputs_rejected() {
        let stg = Stg::new(20, 1);
        let err = distances_to(&stg, StateId::from_index(0));
        assert!(matches!(err, Err(FsmError::BudgetExceeded { .. })));
    }
}
