//! Cross-crate integration: the full lifecycle from STG through locking,
//! fabrication, activation and functional equivalence.

use hardware_metering::fsm::{self, Stg};
use hardware_metering::logic::Bits;
use hardware_metering::metering::{protocol, Designer, Foundry, LockOptions};

fn lock(original: Stg, modules: usize, holes: usize, groups: usize, seed: u64) -> Designer {
    Designer::new(
        original,
        LockOptions {
            added_modules: modules,
            black_holes: holes,
            group_bits: groups,
            ..LockOptions::default()
        },
        seed,
    )
    .expect("lock construction")
}

#[test]
fn every_fabricated_chip_unlocks_with_its_own_key() {
    let mut designer = lock(Stg::ring_counter(6, 2), 4, 1, 0, 1);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 2);
    for _ in 0..25 {
        let mut chip = foundry.fabricate_one();
        assert!(!chip.is_unlocked());
        protocol::activate(&mut designer, &mut chip).expect("activation");
        assert!(chip.is_unlocked());
    }
    assert_eq!(designer.activations(), 25);
}

#[test]
fn keys_never_transfer_between_chips() {
    let mut designer = lock(Stg::ring_counter(6, 2), 4, 1, 0, 3);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 4);
    let mut donor = foundry.fabricate_one();
    protocol::activate(&mut designer, &mut donor).expect("activation");
    let stolen = donor.stored_key().unwrap().clone();
    let mut transferred = 0;
    for _ in 0..15 {
        let mut victim = foundry.fabricate_one();
        if victim.apply_key(&stolen).is_ok() && victim.is_unlocked() {
            transferred += 1;
        }
    }
    assert_eq!(transferred, 0, "keys are chip-specific");
}

#[test]
fn unlocked_chip_is_io_equivalent_to_original() {
    // The central §4.1 guarantee: boosting preserves the behavioural
    // specification once unlocked. Checked against a KISS2-described
    // machine with multi-bit I/O.
    let text = "\
.i 2
.o 2
.r a
00 a a 00
01 a b 01
10 a c 10
11 a a 11
-- b c 01
0- c a 10
1- c c 00
.e
";
    let original = fsm::kiss::parse(text).expect("valid KISS2");
    let mut designer = lock(original.clone(), 3, 0, 0, 5);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 6);
    let mut chip = foundry.fabricate_one();
    protocol::activate(&mut designer, &mut chip).expect("activation");

    let width = chip.blueprint().num_inputs();
    let mut spec_state = original.reset_state();
    let mut x = 0u64;
    for step in 0..500 {
        // A deterministic but varied input pattern.
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = (x >> 33) & ((1 << width) - 1);
        let input = Bits::from_u64(v, width);
        let got = chip.step(&input);
        let (next, want) = original.step_or_hold(spec_state, &input.slice(0, 2));
        spec_state = next;
        assert_eq!(got, want, "divergence at step {step}");
    }
}

#[test]
fn sffsm_population_statistics() {
    let designer = lock(Stg::ring_counter(5, 1), 3, 0, 2, 7);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 8);
    let chips = foundry.fabricate(60);
    let mut histogram = [0usize; 4];
    for c in &chips {
        histogram[c.group() as usize] += 1;
    }
    // Roughly uniform groups (loose bound: every group within [4, 26] of 60).
    for (g, &n) in histogram.iter().enumerate() {
        assert!((4..=26).contains(&n), "group {g} count {n}: {histogram:?}");
    }
}

#[test]
fn power_up_states_are_diverse() {
    // §4.2(iii): distinct chips get distinct power-up states, per the
    // birthday analysis for the configured k.
    let designer = lock(Stg::ring_counter(5, 1), 6, 0, 0, 9);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 10);
    let mut seen = std::collections::HashSet::new();
    let n = 40;
    for _ in 0..n {
        let chip = foundry.fabricate_one();
        seen.insert(chip.scan_flip_flops().0);
    }
    // 18 bits, 40 chips: collisions are ~0.3% likely — demand none here.
    assert_eq!(seen.len(), n, "power-up states must be unique at this scale");
}

#[test]
fn scan_readout_roundtrips_through_designer() {
    let designer = lock(Stg::ring_counter(6, 2), 4, 1, 2, 11);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 12);
    for _ in 0..10 {
        let chip = foundry.fabricate_one();
        let readout = chip.scan_flip_flops();
        // The designer recovers exactly the chip's composed state + group.
        let (composed, group) = designer
            .blueprint()
            .parse_readout(&readout.0)
            .expect("well-formed readout");
        assert_eq!(group, chip.group());
        // Re-scrambling must reproduce the readout's added field.
        let layout = designer.blueprint().scan_layout();
        let code = designer.blueprint().obfuscation().scramble(composed);
        for (i, pos) in layout.added.enumerate() {
            assert_eq!(readout.0.get(pos), (code >> i) & 1 == 1);
        }
    }
}

#[test]
fn multiple_keys_for_one_chip_all_work() {
    let designer = lock(Stg::ring_counter(5, 2), 3, 0, 0, 13);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 14);
    let chip = foundry.fabricate_one();
    let readout = chip.scan_flip_flops();
    let keys = designer
        .compute_keys(&readout, 4, 15)
        .expect("diversified keys");
    assert!(!keys.is_empty());
    for (i, key) in keys.iter().enumerate() {
        let mut fresh = chip.clone();
        fresh
            .apply_key(key)
            .unwrap_or_else(|e| panic!("key {i} failed: {e}"));
        assert!(fresh.is_unlocked(), "key {i}");
    }
    // And they are genuinely distinct.
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            assert_ne!(keys[i], keys[j]);
        }
    }
}

#[test]
fn environmental_stress_does_not_brick_enrolled_chips() {
    use hardware_metering::rub::Environment;
    let mut designer = lock(Stg::ring_counter(5, 2), 4, 0, 1, 17);
    let mut foundry = Foundry::new(designer.blueprint().clone(), 18);
    let mut chip = foundry.fabricate_one();
    protocol::activate(&mut designer, &mut chip).expect("activation");
    // Hot, droopy supply: noisy RUB reads. The enrolled reading + majority
    // group derivation keep field boots working.
    chip.set_environment(Environment::stressed(3.0));
    for boot in 0..20 {
        chip.boot_from_storage()
            .unwrap_or_else(|e| panic!("boot {boot} failed: {e}"));
        assert!(chip.is_unlocked());
    }
}
