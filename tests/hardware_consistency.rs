//! Cross-crate integration: the synthesized lock hardware agrees with the
//! behavioural BFSM model, and the synthesis flow agrees with the FSM
//! simulator — the two "views" of every experiment must be the same system.

use hardware_metering::fsm::{EncodingStrategy, Stg};
use hardware_metering::logic::Bits;
use hardware_metering::metering::hardware::added_netlist;
use hardware_metering::metering::{BfsmState, Designer, LockOptions};
use hardware_metering::netlist::CellLibrary;
use hardware_metering::synth::flow::{synthesize, verify_against_stg, SynthOptions};

#[test]
fn synthesized_fsm_matches_simulation_across_encodings() {
    let lib = CellLibrary::generic();
    for (i, strategy) in [
        EncodingStrategy::Binary,
        EncodingStrategy::Gray,
        EncodingStrategy::OneHot,
        EncodingStrategy::RandomObfuscated { seed: 5 },
    ]
    .into_iter()
    .enumerate()
    {
        let stg = hardware_metering::fsm::random_stg(11, 3, 2, 3, 40 + i as u64);
        let result = synthesize(
            &stg,
            &lib,
            &SynthOptions {
                encoding: strategy,
                ..SynthOptions::default()
            },
        )
        .expect("synthesis");
        verify_against_stg(&result, &stg, 500, 99).expect("hardware ≡ STG");
    }
}

#[test]
fn lock_netlist_walks_to_unlock_like_the_model() {
    // Drive the *gate-level* lock with a designer-computed key and watch
    // the unlock latch rise — the hardware-level version of activation.
    let lib = CellLibrary::generic();
    let designer = Designer::new(
        Stg::ring_counter(5, 2),
        LockOptions {
            added_modules: 2,
            black_holes: 0,
            dummy_ffs: 2,
            ..LockOptions::default()
        },
        51,
    )
    .expect("lock");
    let bfsm = designer.blueprint();
    let nl = added_netlist(bfsm, &lib).expect("lock netlist");

    // Start the hardware at an arbitrary locked composed state.
    let start: u32 = 27;
    let key = bfsm.safe_sequence_to_exit(start, 0).expect("key exists");

    // FF vector: no holes here, so [unlock, module bits…, dummies…].
    let n_ffs = nl.flip_flops().len();
    let mut state = Bits::zeros(n_ffs);
    for i in 0..bfsm.added().state_bits() {
        state.set(1 + i, (start >> i) & 1 == 1);
    }

    let mut model = BfsmState::Locked {
        composed: start,
        cycle: 0,
    };
    let unlock_symbol = bfsm.unlock_symbol();
    for &v in key.iter().chain(std::iter::once(&unlock_symbol)) {
        // Hardware step.
        let mut pi = Bits::zeros(nl.inputs().len());
        for i in 0..bfsm.added().input_bits() {
            pi.set(i, (v >> i) & 1 == 1);
        }
        let (_, next) = nl.eval(&pi, &state);
        state = next;
        // Model step.
        let (next_model, _) = bfsm.step(model, &bfsm.widen_input(v), 0);
        model = next_model;
    }
    assert!(model.is_unlocked(), "model must unlock");
    assert!(state.get(0), "hardware unlock latch must be set");
}

#[test]
fn lock_cost_scales_linearly_with_modules() {
    // The paper's headline: exponential state count for linear hardware.
    let lib = CellLibrary::generic();
    let area = |modules: usize| {
        let designer = Designer::new(
            Stg::ring_counter(4, 1),
            LockOptions {
                added_modules: modules,
                black_holes: 0,
                input_bits: Some(4),
                ..LockOptions::default()
            },
            60 + modules as u64,
        )
        .expect("lock");
        added_netlist(designer.blueprint(), &lib)
            .expect("netlist")
            .stats(&lib)
            .area
    };
    let a2 = area(2);
    let a4 = area(4);
    let a6 = area(6);
    // Linear-ish growth: the jump from 2→4 modules is similar to 4→6, and
    // nowhere near the 64× the state space grows by.
    let d1 = a4 - a2;
    let d2 = a6 - a4;
    assert!(d1 > 0.0 && d2 > 0.0);
    assert!(d2 < 2.5 * d1, "area must grow ~linearly: {a2} {a4} {a6}");
    assert!(a6 < 4.0 * a2, "18-FF lock must stay small: {a2} → {a6}");
}

#[test]
fn blif_roundtrip_preserves_lock_behaviour() {
    use hardware_metering::netlist::blif;
    let lib = CellLibrary::generic();
    let designer = Designer::new(
        Stg::ring_counter(4, 1),
        LockOptions {
            added_modules: 2,
            black_holes: 0,
            dummy_ffs: 0,
            input_bits: Some(3),
            ..LockOptions::default()
        },
        70,
    )
    .expect("lock");
    let nl = added_netlist(designer.blueprint(), &lib).expect("netlist");
    let text = blif::emit(&nl);
    let back = blif::parse(&text).expect("parse back");
    assert_eq!(back.flip_flops().len(), nl.flip_flops().len());
    // Behavioural spot-check over random vectors.
    let n_ffs = nl.flip_flops().len();
    let mut x = 7u64;
    for _ in 0..200 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let pi = Bits::from_u64((x >> 20) & 0x7, nl.inputs().len());
        let st = Bits::from_u64((x >> 40) & ((1 << n_ffs) - 1), n_ffs);
        let (po1, ns1) = nl.eval(&pi, &st);
        let (po2, ns2) = back.eval(&pi, &st);
        assert_eq!(ns1, ns2);
        assert_eq!(po1, po2);
    }
}

#[test]
fn verilog_emission_covers_the_lock() {
    use hardware_metering::netlist::verilog;
    let lib = CellLibrary::generic();
    let designer = Designer::new(Stg::ring_counter(4, 1), LockOptions::default(), 80)
        .expect("lock");
    let nl = added_netlist(designer.blueprint(), &lib).expect("netlist");
    let v = verilog::emit(&nl);
    assert!(v.contains("module lock_12ff"));
    assert!(v.contains("always @(posedge clk)"));
    assert!(v.matches("endmodule").count() == 1);
}
