//! Lock every corpus control FSM end-to-end: realistic designs (traffic
//! controller, bus arbiter, sequence detector, memory sequencer) must
//! survive boosting with their behaviour intact.

use hardware_metering::fsm::corpus;
use hardware_metering::logic::Bits;
use hardware_metering::metering::{protocol, Designer, Foundry, LockOptions};
use hardware_metering::netlist::CellLibrary;
use hardware_metering::synth::flow::{synthesize, verify_against_stg, SynthOptions};

#[test]
fn every_corpus_machine_locks_and_stays_equivalent() {
    for (name, _) in corpus::all() {
        let original = corpus::load(name);
        let mut designer = Designer::new(
            original.clone(),
            LockOptions {
                added_modules: 3,
                black_holes: 1,
                ..LockOptions::default()
            },
            0xC0FFEE ^ name.len() as u64,
        )
        .unwrap_or_else(|e| panic!("{name}: lock failed: {e}"));
        let mut foundry = Foundry::new(designer.blueprint().clone(), 0xFAB ^ name.len() as u64);
        let mut chip = foundry.fabricate_one();
        protocol::activate(&mut designer, &mut chip)
            .unwrap_or_else(|e| panic!("{name}: activation failed: {e}"));

        // Behavioural equivalence over a deterministic pseudo-random drive.
        let width = chip.blueprint().num_inputs();
        let mut spec_state = original.reset_state();
        let mut x: u64 = 0x1234_5678 ^ name.len() as u64;
        for step in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (x >> 33) & ((1u64 << width) - 1);
            let input = Bits::from_u64(v, width);
            let got = chip.step(&input);
            let (next, want) = original.step_or_hold(spec_state, &input.slice(0, original.num_inputs()));
            spec_state = next;
            assert_eq!(got, want, "{name}: divergence at step {step}");
        }
    }
}

#[test]
fn every_corpus_machine_synthesizes_and_verifies() {
    let lib = CellLibrary::generic();
    for (name, _) in corpus::all() {
        let stg = corpus::load(name);
        let result = synthesize(&stg, &lib, &SynthOptions::default())
            .unwrap_or_else(|e| panic!("{name}: synthesis failed: {e}"));
        verify_against_stg(&result, &stg, 400, 0xBEEF)
            .unwrap_or_else(|e| panic!("{name}: hardware mismatch: {e}"));
        assert!(result.stats.area > 0.0);
    }
}

#[test]
fn corpus_machines_roundtrip_kiss2() {
    use hardware_metering::fsm::kiss;
    for (name, _) in corpus::all() {
        let stg = corpus::load(name);
        let text = kiss::emit(&stg);
        let back = kiss::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let eq = hardware_metering::fsm::product::io_equivalent(
            &stg,
            stg.reset_state(),
            &back,
            back.reset_state(),
            100_000,
        )
        .unwrap();
        assert!(eq.is_equivalent(), "{name}: KISS2 round-trip changed behaviour");
    }
}
