#!/bin/bash
# Regenerates every results/*.txt artifact (run from the repo root, release
# binaries must be built: cargo build --release -p hwm-bench).
set -e
mkdir -p results
./target/release/table1 > results/table1.txt
./target/release/table2 > results/table2.txt
./target/release/table4 > results/table4.txt
./target/release/fig8 > results/fig8.txt
./target/release/analysis > results/analysis.txt
./target/release/passive > results/passive.txt
./target/release/ablations --runs 20 > results/ablations.txt
./target/release/attack_table --cap 2000000 > results/attack_table.txt
./target/release/table3 --runs "${TABLE3_RUNS:-100}" --cap 2000000 > results/table3.txt
echo "all results regenerated"
