#!/bin/bash
# Regenerates every results/*.txt artifact (run from the repo root, release
# binaries must be built: cargo build --release -p hwm-bench).
#
# JOBS controls the worker count (default: all cores). Every table is
# byte-identical for any JOBS value — work items are seeded per index, so
# the artifacts do not depend on the machine's parallelism. Timings land in
# results/bench_meta.json (machine-readable, excluded from golden checks).
#
# PROFILE=1 additionally captures a JSONL trace per binary under
# results/trace/ (gitignored) and prints each binary's per-phase breakdown
# to stderr; summarize the traces afterwards with
# ./target/release/profile.
set -e
mkdir -p results
JOBS="${JOBS:-0}" # 0 = auto (all cores)

# trace_args <name>: the uniform profiling flags when PROFILE=1.
trace_args() {
  if [ "${PROFILE:-0}" = "1" ]; then
    echo "--profile --trace-out results/trace/$1.jsonl"
  fi
}

./target/release/table1 --jobs "$JOBS" $(trace_args table1) > results/table1.txt
./target/release/table2 --jobs "$JOBS" $(trace_args table2) > results/table2.txt
./target/release/table4 --jobs "$JOBS" $(trace_args table4) > results/table4.txt
./target/release/fig8 --jobs "$JOBS" $(trace_args fig8) > results/fig8.txt
./target/release/analysis $(trace_args analysis) > results/analysis.txt
./target/release/passive $(trace_args passive) > results/passive.txt
./target/release/ablations --runs 20 --jobs "$JOBS" $(trace_args ablations) > results/ablations.txt
./target/release/attack_table --cap 2000000 --jobs "$JOBS" $(trace_args attack_table) > results/attack_table.txt
./target/release/table3 --runs "${TABLE3_RUNS:-100}" --cap 2000000 --jobs "$JOBS" $(trace_args table3) > results/table3.txt
echo "all results regenerated"
if [ "${PROFILE:-0}" = "1" ]; then
  ./target/release/profile
fi
