#!/bin/bash
# Regenerates every results/*.txt artifact (run from the repo root, release
# binaries must be built: cargo build --release -p hwm-bench).
#
# JOBS controls the worker count (default: all cores). Every table is
# byte-identical for any JOBS value — work items are seeded per index, so
# the artifacts do not depend on the machine's parallelism. Timings land in
# results/bench_meta.json (machine-readable, excluded from golden checks).
set -e
mkdir -p results
JOBS="${JOBS:-0}" # 0 = auto (all cores)
./target/release/table1 --jobs "$JOBS" > results/table1.txt
./target/release/table2 --jobs "$JOBS" > results/table2.txt
./target/release/table4 --jobs "$JOBS" > results/table4.txt
./target/release/fig8 --jobs "$JOBS" > results/fig8.txt
./target/release/analysis > results/analysis.txt
./target/release/passive > results/passive.txt
./target/release/ablations --runs 20 --jobs "$JOBS" > results/ablations.txt
./target/release/attack_table --cap 2000000 --jobs "$JOBS" > results/attack_table.txt
./target/release/table3 --runs "${TABLE3_RUNS:-100}" --cap 2000000 --jobs "$JOBS" > results/table3.txt
echo "all results regenerated"
