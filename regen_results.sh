#!/bin/bash
# Regenerates every results/*.txt artifact (run from the repo root, release
# binaries must be built: cargo build --release -p hwm-bench).
#
# JOBS controls the worker count (default: all cores). Every table is
# byte-identical for any JOBS value — work items are seeded per index, so
# the artifacts do not depend on the machine's parallelism. Timings land in
# results/bench_meta.json (machine-readable, excluded from golden checks).
#
# PROFILE=1 additionally captures a JSONL trace per binary under
# results/trace/ (gitignored) and prints each binary's per-phase breakdown
# to stderr; summarize the traces afterwards with
# ./target/release/profile.
set -u
mkdir -p results
JOBS="${JOBS:-0}" # 0 = auto (all cores)

# trace_args <name>: the uniform profiling flags when PROFILE=1.
trace_args() {
  if [ "${PROFILE:-0}" = "1" ]; then
    echo "--profile --trace-out results/trace/$1.jsonl"
  fi
}

# run_step <artifact> <binary> [args...]: runs one binary into a temp file
# and only moves it over results/<artifact> on success. A failing binary
# therefore never leaves a truncated or partial artifact behind — the
# previous table (if any) survives and the script stops with a clear
# message instead of quietly "regenerating" garbage.
run_step() {
  artifact="$1"
  shift
  binary="$1"
  tmp="results/.${artifact}.tmp"
  "$@" > "$tmp"
  status=$?
  if [ "$status" -ne 0 ]; then
    rm -f "$tmp"
    echo "regen_results: '$binary' exited with status $status;" \
      "results/$artifact left untouched, aborting" >&2
    exit 1
  fi
  mv "$tmp" "results/$artifact"
}

run_step table1.txt ./target/release/table1 --jobs "$JOBS" $(trace_args table1)
run_step table2.txt ./target/release/table2 --jobs "$JOBS" $(trace_args table2)
run_step table4.txt ./target/release/table4 --jobs "$JOBS" $(trace_args table4)
run_step fig8.txt ./target/release/fig8 --jobs "$JOBS" $(trace_args fig8)
run_step analysis.txt ./target/release/analysis $(trace_args analysis)
run_step passive.txt ./target/release/passive $(trace_args passive)
run_step ablations.txt ./target/release/ablations --runs 20 --jobs "$JOBS" $(trace_args ablations)
run_step attack_table.txt ./target/release/attack_table --cap 2000000 --jobs "$JOBS" $(trace_args attack_table)
run_step table3.txt ./target/release/table3 --runs "${TABLE3_RUNS:-100}" --cap 2000000 --jobs "$JOBS" $(trace_args table3)
# PROFILE=1 additionally dumps the serving run's Prometheus-style
# exposition (timing histograms included, so gitignored like the traces).
metrics_args() {
  if [ "${PROFILE:-0}" = "1" ]; then
    echo "--metrics-out results/trace/serve_metrics.prom"
  fi
}

run_step serve_bench.txt ./target/release/serve_bench --clients 32 --overhead --jobs "$JOBS" $(trace_args serve_bench) $(metrics_args)
run_step monitor.txt ./target/release/hwm_monitor --once --jobs "$JOBS"
run_step recovery.txt ./target/release/crash_sim --jobs "$JOBS" $(trace_args crash_sim)
run_step alerts.txt ./target/release/crash_sim --campaign clone --jobs "$JOBS" $(trace_args alert_sim)
mkdir -p results/trace
run_step cluster.txt ./target/release/cluster_bench --jobs "$JOBS" --overhead --traces-out results/trace/cluster_traces.jsonl $(trace_args cluster_bench)
# The slowest span trees of the cluster run above (the failover trace
# ranks first by logical tick-duration). The JSONL dump is gitignored
# intermediate state; the rendering is the golden.
run_step traces.txt ./target/release/hwm_traces --input results/trace/cluster_traces.jsonl --slowest 5
echo "all results regenerated"
if [ "${PROFILE:-0}" = "1" ]; then
  ./target/release/profile
fi
