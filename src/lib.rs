//! Hardware metering: active BFSM locking and passive IC identification.
//!
//! Umbrella crate re-exporting the whole workspace. See the individual crates
//! for the substrates:
//!
//! * [`logic`] — two-level logic minimization (cubes, covers, ESPRESSO loop);
//! * [`netlist`] — standard cells, gate-level netlists, timing and power;
//! * [`fsm`] — state transition graphs, KISS2 I/O, paths and encodings;
//! * [`synth`] — the STG → mapped-netlist synthesis flow and the ISCAS'89
//!   benchmark profiles;
//! * [`rub`] — manufacturing variability and the Random Unique Block;
//! * [`metering`] — the paper's contribution: BFSM construction, locking,
//!   black holes, obfuscation, SFFSM, the Alice/Bob protocol, remote
//!   disabling and the DAC 2001 passive scheme;
//! * [`attacks`] — the nine attacks and countermeasure evaluation.
//!
//! # Quickstart
//!
//! ```
//! use hardware_metering::metering::{Designer, Foundry, LockOptions};
//! use hardware_metering::fsm::Stg;
//!
//! // Alice designs a chip whose control FSM is a 5-state counter.
//! let original = Stg::ring_counter(5, 1);
//! let designer = Designer::new(original, LockOptions::default(), 7).unwrap();
//!
//! // Bob fabricates 3 ICs; manufacturing variability locks each one.
//! let mut foundry = Foundry::new(designer.blueprint().clone(), 1234);
//! let mut chips = foundry.fabricate(3);
//!
//! for chip in &mut chips {
//!     assert!(!chip.is_unlocked());
//!     let readout = chip.scan_flip_flops();           // Bob reads the FFs
//!     let key = designer.compute_key(&readout).unwrap(); // Alice answers
//!     chip.apply_key(&key).unwrap();
//!     assert!(chip.is_unlocked());
//! }
//! ```

pub use hwm_attacks as attacks;
pub use hwm_fsm as fsm;
pub use hwm_logic as logic;
pub use hwm_metering as metering;
pub use hwm_netlist as netlist;
pub use hwm_rub as rub;
pub use hwm_synth as synth;
