//! Quickstart: lock a design, fabricate chips, and walk the Figure-2
//! key-exchange protocol end to end.
//!
//! Run with: `cargo run --example quickstart`

use hardware_metering::fsm::Stg;
use hardware_metering::logic::Bits;
use hardware_metering::metering::{Designer, Foundry, LockOptions};

fn main() {
    // Alice's design: a 5-state control FSM (stand in your own KISS2 file
    // via hardware_metering::fsm::kiss::parse).
    let original = Stg::ring_counter(5, 2);
    println!("original design: {original}");

    // Alice boosts the FSM: 12 added flip-flops, one black hole.
    let mut designer = Designer::new(original.clone(), LockOptions::default(), 42)
        .expect("lock construction");
    let bfsm = designer.blueprint().clone();
    println!(
        "boosted FSM: {} added FFs ({} added states), {} black hole(s), scan chain of {} FFs",
        bfsm.added().state_bits(),
        bfsm.added().state_count(),
        bfsm.black_holes().len(),
        bfsm.scan_layout().total(),
    );

    // Bob fabricates five ICs. Manufacturing variability locks each one in
    // its own power-up state.
    let mut foundry = Foundry::new(bfsm.clone(), 1337);
    let mut chips = foundry.fabricate(5);
    for chip in &chips {
        println!("fabricated {chip}: locked = {}", !chip.is_unlocked());
        assert!(!chip.is_unlocked(), "every chip must leave the fab locked");
    }

    // The key exchange, chip by chip.
    for chip in &mut chips {
        let readout = chip.scan_flip_flops();
        let key = designer.issue_key(&readout).expect("Alice can always answer");
        println!("{chip}: key of {} input vectors", key.len());
        chip.apply_key(&key).expect("the right key unlocks");
        chip.store_key(key);
        assert!(chip.is_unlocked());
    }
    println!("activated {} chips; Alice's ledger: {} royalties", chips.len(), designer.activations());

    // An unlocked chip behaves exactly like the original design.
    let chip = &mut chips[0];
    let mut spec_state = original.reset_state();
    for step in 0..20 {
        let input = Bits::from_u64(step % 2, bfsm.num_inputs());
        let got = chip.step(&input);
        let (next, want) = original.step_or_hold(spec_state, &input.slice(0, 1));
        spec_state = next;
        assert_eq!(got, want, "unlocked chip must match the specification");
    }
    println!("behavioural check passed: unlocked chip ≡ original design");

    // Rebooting in the field: the stored reading + key self-unlock.
    chips[1].boot_from_storage().expect("field boot");
    assert!(chips[1].is_unlocked());
    println!("field re-boot with stored key: ok");

    // A wrong key on a fresh chip does nothing (or worse — black hole).
    let mut pirate = foundry.fabricate_one();
    let stolen_key = chips[2].stored_key().unwrap().clone();
    let result = pirate.apply_key(&stolen_key);
    println!(
        "pirate chip with a stolen key: unlocked = {}, trapped = {} ({:?})",
        pirate.is_unlocked(),
        pirate.is_trapped(),
        result.err().map(|e| e.to_string())
    );
    assert!(!pirate.is_unlocked(), "stolen keys must not transfer");
}
