//! The attack laboratory: runs all nine attacks of the paper's §6.1 against
//! a hardened configuration and against a deliberately weakened one, so the
//! countermeasures' effect is visible side by side.
//!
//! Run with: `cargo run --release --example attack_lab`
//! (debug works too, with a smaller brute-force cap).

use hardware_metering::attacks::{run_all, AttackBudgets};
use hardware_metering::fsm::Stg;
use hardware_metering::metering::LockOptions;

fn main() {
    let cap = if cfg!(debug_assertions) { 100_000 } else { 1_000_000 };
    let budgets = AttackBudgets {
        brute_cap: cap,
        ..AttackBudgets::default()
    };

    println!("=== hardened: 18 added FFs, 2 black holes, SFFSM (4 groups) ===");
    // A 24-state original: wide enough state-code space that a forced
    // garbage decode (the reset-state CAR under SFFSM) lands on the right
    // state only with small probability.
    let hardened = run_all(
        Stg::ring_counter(24, 2),
        LockOptions {
            // 18 added FFs: 262,144 states — beyond the default
            // redundancy-removal enumeration budget.
            added_modules: 6,
            black_holes: 2,
            group_bits: 2,
            ..LockOptions::default()
        },
        budgets,
        2024,
    )
    .expect("hardened run");
    println!("{hardened}\n");

    println!("=== weakened: 6 added FFs, no black holes, no SFFSM ===");
    let weak = run_all(
        Stg::ring_counter(24, 2),
        LockOptions {
            added_modules: 2,
            black_holes: 0,
            group_bits: 0,
            ..LockOptions::default()
        },
        budgets,
        2025,
    )
    .expect("weak run");
    println!("{weak}\n");

    println!(
        "summary: hardened {}/9 breached, weakened {}/9 breached",
        hardened.breaches(),
        weak.breaches()
    );
    assert!(hardened.breaches() < weak.breaches());
}
