//! The overbuilding scenario from the paper's §2.2: Alice orders N_A chips;
//! Bob fabricates N_A + N_B from the same mask and tries to monetize the
//! extra N_B. Active metering makes the N_B dies worthless bricks, and
//! Alice's activation ledger doubles as the royalty meter.
//!
//! Run with: `cargo run --example foundry_piracy`

use hardware_metering::fsm::Stg;
use hardware_metering::metering::{protocol, Designer, Foundry, LockOptions};

fn main() {
    let n_a = 8; // chips Alice paid for
    let n_b = 5; // chips Bob overbuilds

    let original = Stg::ring_counter(6, 2);
    let mut designer = Designer::new(
        original,
        LockOptions {
            added_modules: 4,
            black_holes: 1,
            ..LockOptions::default()
        },
        7,
    )
    .expect("lock construction");
    let mut foundry = Foundry::new(designer.blueprint().clone(), 99);

    // Bob runs the mask N_A + N_B times.
    let mut legitimate = foundry.fabricate(n_a);
    let mut overbuilt = foundry.fabricate(n_b);
    println!(
        "Bob fabricated {} dies; Alice ordered {}",
        foundry.fabricated(),
        n_a
    );

    // The lawful path: Bob reports N_A readouts, Alice issues N_A keys.
    for chip in &mut legitimate {
        protocol::activate(&mut designer, chip).expect("legitimate activation");
    }
    println!(
        "activated {}/{} legitimate chips; royalty ledger shows {} activations",
        legitimate.iter().filter(|c| c.is_unlocked()).count(),
        n_a,
        designer.activations()
    );

    // Bob's options for the overbuilt dies:
    // 1. Sell them locked — they do nothing.
    for (i, chip) in overbuilt.iter().enumerate() {
        assert!(!chip.is_unlocked(), "overbuilt die {i} must be dead");
    }
    println!("option 1 (sell locked): {} dead bricks", overbuilt.len());

    // 2. Replay a legitimate key. Each key is specific to its chip's
    //    RUB-determined power-up state, so it fails elsewhere.
    let stolen = legitimate[0].stored_key().unwrap().clone();
    let mut replay_unlocked = 0;
    for chip in &mut overbuilt {
        if chip.apply_key(&stolen).is_ok() && chip.is_unlocked() {
            replay_unlocked += 1;
        }
    }
    println!("option 2 (replay a paid key): unlocked {replay_unlocked}/{n_b}");
    assert_eq!(replay_unlocked, 0);

    // 3. Ask Alice — but every key request is a ledger entry, i.e. a
    //    royalty. There is no free path to working silicon.
    let mut chip = foundry.fabricate_one();
    protocol::activate(&mut designer, &mut chip).expect("Bob can always pay");
    println!(
        "option 3 (pay up): ledger now shows {} activations for {} working chips",
        designer.activations(),
        designer.activations()
    );

    // Alice's audit: fabricated vs activated tells her exactly how many
    // dies exist that she never unlocked.
    let ghost_dies = foundry.fabricated() as usize - designer.activations();
    println!(
        "audit: {} dies exist beyond the ledger — all of them locked",
        ghost_dies
    );
}
