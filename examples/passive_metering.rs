//! Passive metering — the DAC 2001 scheme of the titled paper: every IC
//! gets a unique functionality-preserving control-path variant; an auditor
//! who finds two chips with the same variant has proof of overbuilding.
//!
//! Run with: `cargo run --example passive_metering`

use hardware_metering::fsm::Stg;
use hardware_metering::metering::passive::{self, PassiveScheme};

fn main() {
    // The design: an 8-state control FSM with 10 programmable state bits.
    let scheme = PassiveScheme::new(Stg::ring_counter(8, 2), 10).expect("scheme");
    println!(
        "control FSM: {} states on {} bits → log2(variants) = {:.1}",
        scheme.original().state_count(),
        scheme.state_bits(),
        scheme.log2_variant_count()
    );

    // Alice programs 40 licensed chips, each with its own variant.
    let licensed: Vec<_> = (0..40u64).map(|i| scheme.program(i)).collect();

    // All variants behave identically at the pins.
    let probes = scheme.probe_sequence(24);
    {
        let mut a = scheme.program(3);
        let mut b = scheme.program(29);
        for p in &probes {
            assert_eq!(a.step(p), b.step(p));
        }
        println!("functional check: two distinct variants are I/O-identical");
    }

    // The pirate clones one programming image onto 6 extra dies.
    let mut market = licensed;
    for _ in 0..6 {
        market.push(scheme.program(777_777));
    }
    println!("market: 40 licensed + 6 clones of one bootleg variant");

    // The audit: buy chips, extract IDs through the scan chain, look for
    // duplicates.
    let report = passive::audit(&mut market, &probes);
    println!(
        "audit: {} sampled, {} distinct IDs, duplicate groups {:?} → piracy detected: {}",
        report.sampled,
        report.distinct,
        report.duplicate_groups,
        report.piracy_detected()
    );
    assert!(report.piracy_detected());

    // How big must a market sample be to catch the pirate with 95%
    // confidence?
    for (legal, cloned) in [(1_000u64, 50u64), (10_000, 100), (100_000, 1_000)] {
        let s = passive::required_sample(legal, cloned, 0.95).expect("reachable confidence");
        println!(
            "{legal} licensed + {cloned} clones → sample {s} chips for 95% detection \
             (P = {:.3})",
            passive::detection_probability(legal, cloned, s)
        );
    }
}
