//! Remote disabling (§8): the designer detects a misbehaving deployed chip
//! — say, too many invalid unlock attempts, or strange network activity —
//! and sends the secret kill sequence that drops it into a black hole.
//! A gray-hole (trapdoor) variant lets the designer resurrect the chip.
//!
//! Run with: `cargo run --example remote_disable`

use hardware_metering::fsm::Stg;
use hardware_metering::logic::Bits;
use hardware_metering::metering::{protocol, Designer, Foundry, LockOptions};

fn main() {
    let original = Stg::ring_counter(5, 2);
    // Gray hole: the trapdoor sequence is 6 symbols long.
    let mut designer = Designer::new(
        original,
        LockOptions {
            added_modules: 4,
            black_holes: 1,
            trapdoor_length: 6,
            ..LockOptions::default()
        },
        21,
    )
    .expect("lock construction");
    let mut foundry = Foundry::new(designer.blueprint().clone(), 22);

    // Deploy a chip normally.
    let mut chip = foundry.fabricate_one();
    protocol::activate(&mut designer, &mut chip).expect("activation");
    println!("deployed {chip}");

    // The chip operates in the field...
    for step in 0..50u64 {
        chip.step(&Bits::from_u64(step % 4, chip.blueprint().num_inputs()));
    }
    assert!(chip.is_unlocked());
    println!("chip running normally after 50 field cycles");

    // ...until Alice's monitoring flags it (the paper's example: a detector
    // for repeated invalid inputs, or anomalous network behaviour).
    println!("monitoring flags the chip → sending the kill sequence");
    let kill = designer.kill_sequence();
    let dead = chip.remote_disable(&kill);
    assert!(dead, "the kill sequence must trap the chip");
    println!("chip is now {chip}");

    // The trapped chip ignores everything.
    for step in 0..100u64 {
        let out = chip.step(&Bits::from_u64(step % 8, chip.blueprint().num_inputs()));
        assert_eq!(out.count_ones(), 0, "a bricked chip stays dark");
    }
    assert!(chip.is_trapped());
    println!("100 cycles of arbitrary input later: still dark");

    // Resurrection through the gray hole's trapdoor — known only to Alice.
    let trapdoor = designer
        .blueprint()
        .black_holes()[0]
        .trapdoor
        .clone()
        .expect("hole 0 is a gray hole");
    chip.apply_values(&trapdoor);
    assert!(!chip.is_trapped(), "the trapdoor must release the chip");
    println!("trapdoor applied: chip released back to the locked region");

    // From there, a fresh key restores service.
    let readout = chip.scan_flip_flops();
    let key = designer.issue_key(&readout).expect("re-activation key");
    chip.apply_key(&key).expect("re-activation");
    println!("re-activated: {chip}");
    assert!(chip.is_unlocked());
}
