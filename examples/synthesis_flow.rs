//! The EDA substrate by itself: parse a KISS2 control FSM, minimize its
//! states, synthesize to a mapped netlist, inspect timing and power, and
//! emit BLIF + structural Verilog.
//!
//! Run with: `cargo run --example synthesis_flow`

use hardware_metering::fsm::{corpus, minimize, EncodingStrategy};
use hardware_metering::netlist::{blif, power, verilog, CellLibrary};
use hardware_metering::synth::flow::{synthesize, verify_against_stg, SynthOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let lib = CellLibrary::generic();
    for (name, _) in corpus::all() {
        let stg = corpus::load(name);
        println!("== {stg}");

        // 1. State minimization (the designer's pre-lock cleanup pass).
        let min = minimize::minimize(&stg).expect("minimization");
        if min.stg.state_count() < stg.state_count() {
            println!(
                "   minimized: {} → {} states (equivalent states collapsed)",
                stg.state_count(),
                min.stg.state_count()
            );
        }

        // 2. Synthesis under two encodings.
        for (label, encoding) in [
            ("binary", EncodingStrategy::Binary),
            ("obfuscated", EncodingStrategy::RandomObfuscated { seed: 7 }),
        ] {
            let result = synthesize(
                &min.stg,
                &lib,
                &SynthOptions {
                    encoding,
                    ..SynthOptions::default()
                },
            )
            .expect("synthesis");
            verify_against_stg(&result, &min.stg, 300, 9).expect("hardware ≡ STG");
            println!(
                "   {label:<10} {} gates, {} FFs, area {:.1}, delay {:.2}, \
                 power {:.1} ({} SOP literals)",
                result.stats.gates,
                result.stats.ffs,
                result.stats.area,
                result.stats.delay,
                result.stats.power,
                result.sop_literals,
            );
        }

        // 3. Static vs Monte-Carlo power on the binary-encoded netlist.
        let result = synthesize(&min.stg, &lib, &SynthOptions::default()).expect("synthesis");
        let model = power::ActivityModel::default();
        let static_est = power::analyze(&result.netlist, &lib, &model);
        let mut rng = StdRng::seed_from_u64(11);
        let sim = power::simulate(&result.netlist, &lib, &model, 10_000, &mut rng);
        println!(
            "   power cross-check: static {:.1} vs simulated {:.1} (dynamic part)",
            static_est.dynamic, sim.dynamic
        );

        // 4. Interchange formats.
        let blif_text = blif::emit(&result.netlist);
        let verilog_text = verilog::emit(&result.netlist);
        println!(
            "   emitted {} lines of BLIF, {} lines of Verilog",
            blif_text.lines().count(),
            verilog_text.lines().count()
        );
        let back = blif::parse(&blif_text).expect("BLIF round-trip");
        assert_eq!(back.flip_flops().len(), result.netlist.flip_flops().len());
    }
    println!("\nall corpus machines synthesized, verified and round-tripped");
}
